"""Tests for trace file save/load."""

import pytest

from repro.workloads.trace import Trace
from repro.workloads.traceio import load_trace, save_trace


def sample_trace():
    return Trace(
        gaps=[0, 5, 100],
        addrs=[1, 0x2000, 77],
        writes=[False, True, False],
        tail_instructions=42,
        name="sample",
    )


class TestRoundTrip:
    def test_plain_text(self, tmp_path):
        path = str(tmp_path / "t.trace")
        original = sample_trace()
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.gaps == original.gaps
        assert loaded.addrs == original.addrs
        assert loaded.writes == original.writes
        assert loaded.tail_instructions == 42

    def test_gzip(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        save_trace(sample_trace(), path)
        loaded = load_trace(path)
        assert loaded.addrs == [1, 0x2000, 77]
        with open(path, "rb") as f:
            assert f.read(2) == b"\x1f\x8b"  # actually gzip on disk

    def test_name_from_filename(self, tmp_path):
        path = str(tmp_path / "bwaves_slice.trace.gz")
        save_trace(sample_trace(), path)
        assert load_trace(path).name == "bwaves_slice"

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.trace")
        save_trace(Trace(), path)
        assert len(load_trace(path)) == 0


class TestParsing:
    def write(self, tmp_path, text):
        path = tmp_path / "in.trace"
        path.write_text(text)
        return str(path)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = self.write(tmp_path, "# hi\n\n0 1 R\n  \n# bye\n")
        assert len(load_trace(path)) == 1

    def test_hex_addresses(self, tmp_path):
        path = self.write(tmp_path, "0 0xff R\n")
        assert load_trace(path).addrs == [255]

    def test_lowercase_op(self, tmp_path):
        path = self.write(tmp_path, "0 1 w\n")
        assert load_trace(path).writes == [True]

    def test_bad_field_count(self, tmp_path):
        path = self.write(tmp_path, "0 1\n")
        with pytest.raises(ValueError, match="line 1"):
            load_trace(path)

    def test_bad_integer(self, tmp_path):
        path = self.write(tmp_path, "x 1 R\n")
        with pytest.raises(ValueError, match="bad integer"):
            load_trace(path)

    def test_bad_op(self, tmp_path):
        path = self.write(tmp_path, "0 1 X\n")
        with pytest.raises(ValueError, match="R or W"):
            load_trace(path)

    def test_negative_values(self, tmp_path):
        path = self.write(tmp_path, "-1 1 R\n")
        with pytest.raises(ValueError, match="negative"):
            load_trace(path)

    def test_bad_tail(self, tmp_path):
        path = self.write(tmp_path, "0 1 R\n#tail nope\n")
        with pytest.raises(ValueError, match="tail"):
            load_trace(path)

    def test_error_reports_correct_line(self, tmp_path):
        path = self.write(tmp_path, "0 1 R\n0 2 R\nbroken\n")
        with pytest.raises(ValueError, match="line 3"):
            load_trace(path)


class TestLoadedTracesSimulate:
    def test_loaded_trace_runs(self, tmp_path, small_config):
        from repro.cpu.system import simulate
        from repro.mc.setup import MitigationSetup
        from tests.test_system import make_traces

        traces = make_traces(small_config, n=200)
        paths = []
        for i, trace in enumerate(traces):
            path = str(tmp_path / f"core{i}.trace.gz")
            save_trace(trace, path)
            paths.append(path)
        reloaded = [load_trace(p) for p in paths]
        a = simulate(traces, MitigationSetup("none"), small_config, "zen")
        b = simulate(reloaded, MitigationSetup("none"), small_config, "zen")
        assert a.stats.cycles == b.stats.cycles
