"""Tests for the multi-seed statistics helpers."""

import math

import pytest

from repro.analysis.statistics import (
    MetricSummary,
    seed_study,
    summarize,
    t_quantile_95,
)


class TestTQuantile:
    def test_known_values(self):
        assert t_quantile_95(1) == pytest.approx(12.706)
        assert t_quantile_95(10) == pytest.approx(2.228)

    def test_large_dof_approaches_normal(self):
        assert t_quantile_95(1000) == pytest.approx(1.96)

    def test_interpolates_conservatively(self):
        # Gaps take the next tabulated (larger) quantile.
        assert t_quantile_95(22) == pytest.approx(2.060)

    def test_rejects_zero_dof(self):
        with pytest.raises(ValueError):
            t_quantile_95(0)


class TestSummarize:
    def test_constant_values(self):
        s = summarize([5.0, 5.0, 5.0])
        assert s.mean == 5.0
        assert s.stdev == 0.0
        assert s.ci95 == 0.0

    def test_known_interval(self):
        # mean 2, stdev 1, n=4: ci = 3.182 * 1 / 2.
        s = summarize([1.0, 2.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.ci95 == pytest.approx(3.182 * s.stdev / 2.0)
        assert s.low < 2.0 < s.high

    def test_single_value_infinite_interval(self):
        s = summarize([7.0])
        assert math.isinf(s.ci95)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_overlap(self):
        a = MetricSummary(1.0, 0.1, 0.3, 4, (1.0,))
        b = MetricSummary(1.5, 0.1, 0.3, 4, (1.5,))
        c = MetricSummary(3.0, 0.1, 0.3, 4, (3.0,))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_str(self):
        assert "n=3" in str(summarize([1.0, 2.0, 3.0]))


class TestSeedStudy:
    def test_runs_metric_per_seed(self):
        seen = []

        def metric(seed):
            seen.append(seed)
            return float(seed)

        s = seed_study(metric, [1, 2, 3])
        assert seen == [1, 2, 3]
        assert s.mean == 2.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            seed_study(lambda s: 0.0, [])

    def test_simulation_slowdown_stable_across_seeds(self, small_config):
        """The headline comparison holds for every seed, and the replica
        spread on the slowdown is small."""
        from repro.cpu.system import simulate
        from repro.mc.setup import MitigationSetup
        from tests.test_system import make_traces

        def slowdown(seed):
            traces = make_traces(small_config, n=600, seed=seed)
            base = simulate(
                traces, MitigationSetup("none"), small_config, "zen", seed=seed
            )
            rfm = simulate(
                traces,
                MitigationSetup("rfm", threshold=4),
                small_config,
                "zen",
                seed=seed,
            )
            return rfm.slowdown_vs(base)

        summary = seed_study(slowdown, seeds=[1, 2, 3])
        assert summary.mean > 0.0
        assert all(v > 0 for v in summary.values)
        assert summary.stdev < 0.5 * max(summary.mean, 1e-9) + 0.02
