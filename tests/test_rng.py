"""Tests for repro.sim.rng: deterministic named streams."""

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_name_returns_same_stream(self):
        streams = RngStreams(7)
        assert streams.get("a") is streams.get("a")

    def test_different_names_are_independent(self):
        streams = RngStreams(7)
        a = streams.get("a").integers(0, 1 << 30, size=8)
        b = streams.get("b").integers(0, 1 << 30, size=8)
        assert list(a) != list(b)

    def test_reproducible_across_instances(self):
        first = RngStreams(42).get("mint/0").integers(0, 1000, size=16)
        second = RngStreams(42).get("mint/0").integers(0, 1000, size=16)
        assert list(first) == list(second)

    def test_different_seeds_differ(self):
        first = RngStreams(1).get("x").integers(0, 1 << 30, size=8)
        second = RngStreams(2).get("x").integers(0, 1 << 30, size=8)
        assert list(first) != list(second)

    def test_spawn_is_deterministic(self):
        a = RngStreams(5).spawn("child").get("s").integers(0, 1 << 30, size=4)
        b = RngStreams(5).spawn("child").get("s").integers(0, 1 << 30, size=4)
        assert list(a) == list(b)

    def test_spawn_differs_from_parent(self):
        parent = RngStreams(5)
        child = parent.spawn("child")
        a = parent.get("s").integers(0, 1 << 30, size=4)
        b = child.get("s").integers(0, 1 << 30, size=4)
        assert list(a) != list(b)

    def test_integer_seed_stable(self):
        assert RngStreams(3).integer_seed("k") == RngStreams(3).integer_seed("k")

    def test_consumer_order_does_not_matter(self):
        one = RngStreams(9)
        one.get("first")
        value_a = one.get("second").integers(0, 1 << 30)
        two = RngStreams(9)
        value_b = two.get("second").integers(0, 1 << 30)
        assert value_a == value_b
