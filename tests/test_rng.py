"""Tests for repro.sim.rng: deterministic named streams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_name_returns_same_stream(self):
        streams = RngStreams(7)
        assert streams.get("a") is streams.get("a")

    def test_different_names_are_independent(self):
        streams = RngStreams(7)
        a = streams.get("a").integers(0, 1 << 30, size=8)
        b = streams.get("b").integers(0, 1 << 30, size=8)
        assert list(a) != list(b)

    def test_reproducible_across_instances(self):
        first = RngStreams(42).get("mint/0").integers(0, 1000, size=16)
        second = RngStreams(42).get("mint/0").integers(0, 1000, size=16)
        assert list(first) == list(second)

    def test_different_seeds_differ(self):
        first = RngStreams(1).get("x").integers(0, 1 << 30, size=8)
        second = RngStreams(2).get("x").integers(0, 1 << 30, size=8)
        assert list(first) != list(second)

    def test_spawn_is_deterministic(self):
        a = RngStreams(5).spawn("child").get("s").integers(0, 1 << 30, size=4)
        b = RngStreams(5).spawn("child").get("s").integers(0, 1 << 30, size=4)
        assert list(a) == list(b)

    def test_spawn_differs_from_parent(self):
        parent = RngStreams(5)
        child = parent.spawn("child")
        a = parent.get("s").integers(0, 1 << 30, size=4)
        b = child.get("s").integers(0, 1 << 30, size=4)
        assert list(a) != list(b)

    def test_integer_seed_stable(self):
        assert RngStreams(3).integer_seed("k") == RngStreams(3).integer_seed("k")

    def test_consumer_order_does_not_matter(self):
        one = RngStreams(9)
        one.get("first")
        value_a = one.get("second").integers(0, 1 << 30)
        two = RngStreams(9)
        value_b = two.get("second").integers(0, 1 << 30)
        assert value_a == value_b


class TestStreamStateRoundTrip:
    """getstate()/setstate(): the API the checkpoint layer relies on."""

    def test_getstate_setstate_round_trip(self):
        streams = RngStreams(11)
        streams.get("a").integers(0, 1 << 30, size=5)
        streams.get("b").integers(0, 1 << 30, size=3)
        state = streams.getstate()
        expected = streams.get("a").integers(0, 1 << 30, size=8)
        streams.setstate(state)
        replayed = streams.get("a").integers(0, 1 << 30, size=8)
        assert list(expected) == list(replayed)

    def test_setstate_mutates_existing_generators(self):
        streams = RngStreams(11)
        gen = streams.get("a")
        state = streams.getstate()
        gen.integers(0, 1 << 30, size=4)
        streams.setstate(state)
        # Same object, rewound state: pre-resolved references see it.
        assert streams.get("a") is gen

    def test_single_stream_state_accessors(self):
        streams = RngStreams(11)
        state = streams.stream_state("a")
        first = streams.get("a").integers(0, 1 << 30, size=4)
        streams.set_stream_state("a", state)
        second = streams.get("a").integers(0, 1 << 30, size=4)
        assert list(first) == list(second)

    def test_lazily_created_streams_rederive_from_seed(self):
        # Streams not yet created at getstate() time are reproducible
        # anyway (derived from the seed), so omitting them is lossless.
        one = RngStreams(11)
        one.get("early")
        restored = RngStreams(11)
        restored.setstate(one.getstate())
        a = restored.get("late").integers(0, 1 << 30, size=4)
        b = RngStreams(11).get("late").integers(0, 1 << 30, size=4)
        assert list(a) == list(b)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        names=st.lists(
            st.sampled_from(["tracker/0", "tracker/1", "fractal", "mc",
                             "rowswap", "aqua/3"]),
            min_size=1, max_size=4, unique=True,
        ),
        draws=st.integers(min_value=0, max_value=17),
    )
    def test_round_trip_is_lossless_property(self, seed, names, draws):
        streams = RngStreams(seed)
        for name in names:
            streams.get(name).integers(0, 1 << 30, size=draws + 1)
        state = streams.getstate()
        expected = {
            n: list(streams.get(n).integers(0, 1 << 30, size=6))
            for n in names
        }
        streams.setstate(state)
        replayed = {
            n: list(streams.get(n).integers(0, 1 << 30, size=6))
            for n in names
        }
        assert expected == replayed
