"""Tests for terminal charts and multi-programmed mixes."""

import pytest

from repro.analysis.charts import render_barchart, render_linechart
from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.sim.config import SystemConfig
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_mix_traces


class TestBarChart:
    def test_scales_to_peak(self):
        out = render_barchart([("a", 10.0), ("b", 5.0)], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        out = render_barchart([("long-name", 1.0), ("x", 1.0)])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_title_and_unit(self):
        out = render_barchart([("a", 0.5)], title="T", unit="%")
        assert out.startswith("T\n")
        assert "0.5%" in out

    def test_all_zero_values(self):
        out = render_barchart([("a", 0.0)])
        assert "#" not in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_barchart([])


class TestLineChart:
    def test_corners_plotted(self):
        out = render_linechart([(0, 0), (10, 10)], width=11, height=5)
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert lines[0].rstrip().endswith("*")  # top-right
        assert lines[-1][1] == "*"  # bottom-left

    def test_axis_labels(self):
        out = render_linechart([(1, 2), (3, 4)])
        assert "x: 1 .. 3" in out
        assert "y: 2 .. 4" in out

    def test_flat_series(self):
        out = render_linechart([(0, 5), (10, 5)])
        assert "*" in out

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            render_linechart([(1, 1)])


class TestMixes:
    def small(self):
        return SystemConfig(
            num_cores=2,
            num_subchannels=2,
            banks_per_subchannel=4,
            rows_per_bank=4096,
            subarrays_per_bank=16,
        )

    def test_one_workload_per_core(self):
        config = self.small()
        mix = [WORKLOADS["bwaves"], WORKLOADS["mcf"]]
        traces = make_mix_traces(mix, config, requests=100)
        assert traces[0].name == "bwaves"
        assert traces[1].name == "mcf"

    def test_wrong_count_rejected(self):
        with pytest.raises(ValueError, match="mix needs"):
            make_mix_traces([WORKLOADS["bwaves"]], self.small(), 10)

    def test_disjoint_regions(self):
        config = self.small()
        traces = make_mix_traces(
            [WORKLOADS["bwaves"], WORKLOADS["mcf"]], config, requests=300
        )
        region = config.total_lines // 2
        assert all(a < region for a in traces[0].addrs)
        assert all(a >= region for a in traces[1].addrs)

    def test_mix_simulates_under_autorfm(self):
        config = self.small()
        traces = make_mix_traces(
            [WORKLOADS["add"], WORKLOADS["omnetpp"]], config, requests=400
        )
        base = simulate(traces, MitigationSetup("none"), config, "zen")
        auto = simulate(
            traces, MitigationSetup("autorfm", threshold=4), config, "rubix"
        )
        assert auto.stats.total_mitigations > 0
        assert abs(auto.slowdown_vs(base)) < 0.5

    def test_different_mixes_different_randomness(self):
        config = self.small()
        a = make_mix_traces([WORKLOADS["bwaves"], WORKLOADS["mcf"]], config, 100)
        b = make_mix_traces([WORKLOADS["bwaves"], WORKLOADS["xz"]], config, 100)
        assert a[0].addrs != b[0].addrs  # mix composition feeds the seed
