"""Tests for statistics aggregation and the paper's metrics."""

import pytest

from repro.sim.stats import BankStats, CoreStats, SimStats


def make_stats(num_banks=2, num_cores=2) -> SimStats:
    return SimStats.with_shape(num_banks, num_cores)


class TestBankStats:
    def test_merge_adds_all_fields(self):
        a = BankStats(activations=3, alerts=1)
        b = BankStats(activations=2, mitigations=4)
        a.merge(b)
        assert a.activations == 5
        assert a.alerts == 1
        assert a.mitigations == 4


class TestCoreStats:
    def test_ipc(self):
        core = CoreStats(instructions=1000, finish_cycle=500)
        assert core.ipc == 2.0

    def test_ipc_zero_when_unfinished(self):
        assert CoreStats(instructions=10).ipc == 0.0

    def test_avg_read_latency(self):
        core = CoreStats(read_latency_sum=300, reads_completed=3)
        assert core.avg_read_latency == 100.0


class TestSimStatsMetrics:
    def test_act_pki(self):
        stats = make_stats()
        stats.banks[0].activations = 30
        stats.banks[1].activations = 20
        stats.cores[0].instructions = 500
        stats.cores[1].instructions = 500
        assert stats.act_pki == 50.0

    def test_act_per_trefi(self):
        stats = make_stats(num_banks=2)
        stats.cycles = 31_200  # two tREFI at 15600 cycles
        stats.banks[0].activations = 40
        stats.banks[1].activations = 40
        assert stats.act_per_trefi(15_600) == pytest.approx(20.0)

    def test_alerts_per_act(self):
        stats = make_stats()
        stats.banks[0].activations = 90
        stats.banks[1].activations = 10
        stats.banks[0].alerts = 5
        assert stats.alerts_per_act == pytest.approx(0.05)

    def test_alerts_per_act_no_acts(self):
        assert make_stats().alerts_per_act == 0.0

    def test_row_hit_rate(self):
        stats = make_stats()
        stats.banks[0].activations = 60
        stats.banks[0].row_hits = 40
        assert stats.row_hit_rate == pytest.approx(0.4)


class TestWeightedSpeedup:
    def test_identical_runs_give_one(self):
        a = make_stats()
        for core in a.cores:
            core.instructions, core.finish_cycle = 1000, 2000
        assert a.weighted_speedup(a) == pytest.approx(1.0)

    def test_uniform_slowdown(self):
        base, slow = make_stats(), make_stats()
        for core in base.cores:
            core.instructions, core.finish_cycle = 1000, 1000
        for core in slow.cores:
            core.instructions, core.finish_cycle = 1000, 1250
        assert slow.slowdown_vs(base) == pytest.approx(0.2)

    def test_mixed_per_core_speedups_average(self):
        base, other = make_stats(), make_stats()
        for core in base.cores:
            core.instructions, core.finish_cycle = 1000, 1000
        other.cores[0].instructions, other.cores[0].finish_cycle = 1000, 500
        other.cores[1].instructions, other.cores[1].finish_cycle = 1000, 2000
        # speedups 2.0 and 0.5 -> mean 1.25
        assert other.weighted_speedup(base) == pytest.approx(1.25)

    def test_mismatched_core_counts_raise(self):
        with pytest.raises(ValueError):
            make_stats(num_cores=2).weighted_speedup(make_stats(num_cores=3))

    def test_zero_baseline_ipc_raises(self):
        base, run = make_stats(), make_stats()
        for core in run.cores:
            core.instructions, core.finish_cycle = 1, 1
        with pytest.raises(ValueError):
            run.weighted_speedup(base)


class TestSummary:
    def test_summary_keys(self):
        stats = make_stats()
        stats.cycles = 100
        summary = stats.summary(trefi_cycles=15_600)
        for key in ("cycles", "act_pki", "alerts_per_act", "act_per_trefi"):
            assert key in summary
