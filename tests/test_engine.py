"""Tests for the event-driven simulation kernel."""

import pytest

from repro.sim.engine import Engine


class TestEngine:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(30, lambda t: order.append(("c", t)))
        engine.schedule(10, lambda t: order.append(("a", t)))
        engine.schedule(20, lambda t: order.append(("b", t)))
        engine.run()
        assert order == [("a", 10), ("b", 20), ("c", 30)]

    def test_ties_break_by_insertion_order(self):
        engine = Engine()
        order = []
        for tag in "xyz":
            engine.schedule(5, lambda t, tag=tag: order.append(tag))
        engine.run()
        assert order == ["x", "y", "z"]

    def test_now_advances(self):
        engine = Engine()
        seen = []
        engine.schedule(7, lambda t: seen.append(engine.now))
        engine.run()
        assert seen == [7]
        assert engine.now == 7

    def test_cannot_schedule_in_the_past(self):
        engine = Engine()
        engine.schedule(10, lambda t: engine.schedule(5, lambda t2: None))
        with pytest.raises(ValueError):
            engine.run()

    def test_schedule_in(self):
        engine = Engine()
        times = []
        engine.schedule(10, lambda t: engine.schedule_in(5, times.append))
        engine.run()
        assert times == [15]

    def test_handlers_can_chain(self):
        engine = Engine()
        count = [0]

        def tick(t):
            count[0] += 1
            if count[0] < 4:
                engine.schedule_in(10, tick)

        engine.schedule(0, tick)
        final = engine.run()
        assert count[0] == 4
        assert final == 30

    def test_until_bound(self):
        engine = Engine()
        fired = []
        engine.schedule(10, fired.append)
        engine.schedule(100, fired.append)
        engine.run(until=50)
        assert fired == [10]
        assert engine.pending == 1

    def test_max_events_guard(self):
        engine = Engine()

        def forever(t):
            engine.schedule_in(1, forever)

        engine.schedule(0, forever)
        with pytest.raises(RuntimeError, match="livelock"):
            engine.run(max_events=100)

    def test_empty_run_returns_zero(self):
        assert Engine().run() == 0
