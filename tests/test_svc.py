"""Unit tests for the sweep-service building blocks.

Covers the pieces that need no live daemon: the ndjson protocol, the
deterministic priority queue, the job wire codec, the quarantined clock,
and the multi-client ResultCache hardening (atomic hit-touch, the prune
lockfile, and the prune-vs-get race regression). The live-daemon
integration and crash-resume paths live in ``test_svc_service.py`` and
``test_svc_resume.py``.
"""

import json
import multiprocessing
import os

import pytest

from repro.analysis.runner import (
    JOB_WIRE_SCHEMA_VERSION,
    PRUNE_LOCK_NAME,
    Job,
    ResultCache,
    SecurityJob,
    any_job_from_wire,
    any_job_to_wire,
    job_from_wire,
    job_to_wire,
    security_job_from_wire,
    security_job_to_wire,
)
from repro.analysis.storage import DirectoryLock, LockBusyError
from repro.mc.setup import MitigationSetup
from repro.svc import protocol
from repro.svc.clock import Clock
from repro.svc.queue import CANCELLED, QUEUED, JobRecord, SweepQueue


# ----------------------------------------------------------------------
# Protocol framing
# ----------------------------------------------------------------------
class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "submit", "jobs": [{"kind": "sim"}], "priority": 2}
        assert protocol.decode(protocol.encode(message)) == message

    def test_encoding_is_canonical(self):
        a = protocol.encode({"b": 1, "a": 2})
        b = protocol.encode({"a": 2, "b": 1})
        assert a == b
        assert a.endswith(b"\n")

    def test_oversized_message_is_refused(self):
        big = {"op": "submit", "blob": "x" * (protocol.MAX_LINE_BYTES + 1)}
        with pytest.raises(protocol.ProtocolError):
            protocol.encode(big)
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"x" * (protocol.MAX_LINE_BYTES + 1))

    def test_non_object_lines_are_refused(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2]\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"not json\n")

    def test_unknown_op_is_refused(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request({"op": "reboot"})
        op, _ = protocol.parse_request({"op": "ping"})
        assert op == "ping"

    def test_response_envelopes(self):
        assert protocol.response_error(protocol.ok(x=1)) is None
        assert protocol.response_error(protocol.error("nope")) == "nope"


# ----------------------------------------------------------------------
# Deterministic queue
# ----------------------------------------------------------------------
class TestSweepQueue:
    def submit(self, queue, n, priority=0):
        return [
            queue.submit("sim", object(), f"key{queue._next_seq}", priority)
            for _ in range(n)
        ]

    def test_fifo_within_a_priority_class(self):
        queue = SweepQueue()
        records = self.submit(queue, 3)
        popped = [queue.pop().job_id for _ in range(3)]
        assert popped == [r.job_id for r in records]

    def test_higher_priority_dispatches_first(self):
        queue = SweepQueue()
        low = queue.submit("sim", object(), "k0", priority=0)
        high = queue.submit("sim", object(), "k1", priority=5)
        assert queue.pop() is high
        assert queue.pop() is low

    def test_requeue_keeps_original_sequence(self):
        """A crashed shard goes back to the *head* of its priority class."""
        queue = SweepQueue()
        first, second = self.submit(queue, 2)
        crashed = queue.pop()
        assert crashed is first
        queue.requeue(crashed)
        assert queue.pop() is first  # beats `second` despite re-heaping
        assert queue.pop() is second

    def test_cancellation_is_lazy(self):
        queue = SweepQueue()
        a, b = self.submit(queue, 2)
        a.transition(CANCELLED)
        assert queue.pop() is b  # the stale heap entry is skipped
        assert queue.pop() is None

    def test_depth_counts_queued_only(self):
        queue = SweepQueue()
        a, b = self.submit(queue, 2)
        assert queue.depth() == 2
        a.transition(CANCELLED)
        assert queue.depth() == 1
        assert len(queue) == 2  # records are never forgotten

    def test_history_records_every_transition(self):
        record = JobRecord(
            job_id="J0", kind="sim", job=object(), key="k",
            priority=0, seq=0,
        )
        record.transition("running")
        record.transition(QUEUED)
        record.transition("running")
        record.transition("done")
        assert record.history == [
            "queued", "running", "queued", "running", "done",
        ]
        view = record.status_record(snapshots=2)
        assert view["snapshots"] == 2
        json.dumps(view)  # the status view is plain JSON


# ----------------------------------------------------------------------
# Job wire codec
# ----------------------------------------------------------------------
class TestJobWire:
    def test_sim_job_round_trips_losslessly(self):
        job = Job(
            "mcf",
            MitigationSetup(mechanism="autorfm", tracker="mint", threshold=4),
            "rubix", 400, 7, segment_cycles=8000, backend="scalar",
        )
        wire = job_to_wire(job)
        assert wire["kind"] == "sim"
        assert wire["schema"] == JOB_WIRE_SCHEMA_VERSION
        decoded = job_from_wire(json.loads(json.dumps(wire)))
        assert decoded == job

    def test_security_job_round_trips_losslessly(self):
        job = SecurityJob(
            acts=2000, window=4, tracker="mint", policy="fractal", seeds=3,
            scenario="abcd_k", scenario_params={"stride": 20},
        )
        wire = security_job_to_wire(job)
        decoded = security_job_from_wire(json.loads(json.dumps(wire)))
        assert decoded == job
        assert isinstance(decoded.rows, tuple)
        assert isinstance(decoded.scenario_params, tuple)

    def test_any_job_dispatches_on_kind(self):
        sim = Job("xz")
        sec = SecurityJob(seeds=2)
        assert any_job_from_wire(any_job_to_wire(sim)) == sim
        assert any_job_from_wire(any_job_to_wire(sec)) == sec

    def test_wrong_schema_version_is_refused(self):
        wire = job_to_wire(Job("xz"))
        wire["schema"] = JOB_WIRE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            job_from_wire(wire)

    def test_wrong_kind_is_refused(self):
        wire = job_to_wire(Job("xz"))
        wire["kind"] = "security"
        with pytest.raises(ValueError):
            job_from_wire(wire)
        with pytest.raises(ValueError, match="kind"):
            any_job_from_wire({"kind": "mystery", "schema": 1})

    def test_unknown_security_fields_are_refused(self):
        wire = security_job_to_wire(SecurityJob())
        wire["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            security_job_from_wire(wire)


# ----------------------------------------------------------------------
# The quarantined clock
# ----------------------------------------------------------------------
class TestClock:
    def test_touch_creates_and_freshens(self, tmp_path):
        clock = Clock()
        target = str(tmp_path / "beat")
        clock.touch(target)
        assert os.path.exists(target)
        assert clock.age_of(target) < 60.0

    def test_age_of_missing_file_is_infinite(self, tmp_path):
        assert Clock().age_of(str(tmp_path / "nope")) == float("inf")

    def test_now_is_monotonic(self):
        clock = Clock()
        assert clock.now() <= clock.now()


# ----------------------------------------------------------------------
# DirectoryLock + the prune-vs-get race regression
# ----------------------------------------------------------------------
def _make_entry(cache, name, mtime):
    path = os.path.join(cache.directory, name)
    with open(path, "w") as handle:
        handle.write("{}" * 64)
    os.utime(path, (mtime, mtime))
    return path


class TestDirectoryLock:
    def test_second_acquire_is_refused_while_held(self, tmp_path):
        path = str(tmp_path / "x.lock")
        first, second = DirectoryLock(path), DirectoryLock(path)
        assert first.acquire()
        assert not second.acquire()
        first.release()
        assert second.acquire()
        second.release()

    def test_context_manager_raises_when_busy(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with DirectoryLock(path):
            with pytest.raises(LockBusyError):
                with DirectoryLock(path):
                    pass
        assert not os.path.exists(path)

    def test_stale_lock_of_dead_owner_is_stolen(self, tmp_path):
        path = str(tmp_path / "x.lock")
        proc = multiprocessing.Process(target=lambda: None)
        proc.start()
        proc.join()
        with open(path, "w") as handle:
            handle.write(str(proc.pid))  # a pid that no longer exists
        assert DirectoryLock(path).acquire()

    def test_unparseable_lock_is_stolen(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with open(path, "w") as handle:
            handle.write("not-a-pid")
        assert DirectoryLock(path).acquire()


class TestCachePruneRace:
    def test_prune_skips_when_another_pruner_holds_the_lock(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        _make_entry(cache, "aaa.json", 1_000)
        with DirectoryLock(os.path.join(cache.directory, PRUNE_LOCK_NAME)):
            outcome = cache.prune(0)
        assert outcome == {"removed": 0, "freed_bytes": 0, "skipped": True}
        assert os.path.exists(os.path.join(cache.directory, "aaa.json"))
        # With the lock free again the prune proceeds.
        assert cache.prune(0)["removed"] == 1

    def test_hit_touched_entry_is_spared_mid_prune(self, tmp_path):
        """The regression: get() between scan and unlink must spare the
        entry.

        ``get`` touches the file's mtime *before* reading; the pruner
        re-stats each victim immediately before its unlink and spares any
        file whose mtime advanced past the scan. Interleaving the two via
        ``_prune_locked`` makes the race deterministic.
        """
        cache = ResultCache(str(tmp_path))
        _make_entry(cache, "hot.json", 1_000)
        _make_entry(cache, "cold.json", 2_000)
        entries = cache._entries()  # the pruner's scan happens first...
        cache.get("hot")           # ...then a concurrent client hits "hot"
        outcome = cache._prune_locked(entries, 0)
        assert os.path.exists(os.path.join(cache.directory, "hot.json"))
        assert not os.path.exists(os.path.join(cache.directory, "cold.json"))
        assert outcome["removed"] == 1

    def test_get_touches_before_reading(self, tmp_path):
        """Even a miss freshens the mtime — the touch precedes the read."""
        cache = ResultCache(str(tmp_path))
        path = _make_entry(cache, "k.json", 1_000)
        assert cache.get("k") is None  # junk content: a miss
        assert os.stat(path).st_mtime > 1_000

    def test_prune_still_prunes_lru_first(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        _make_entry(cache, "old.json", 1_000)
        keep = _make_entry(cache, "new.json", 2_000)
        outcome = cache.prune(os.stat(keep).st_size)
        assert outcome["removed"] == 1
        assert not outcome["skipped"]
        assert os.path.exists(keep)

    def test_prune_lockfile_is_not_counted_or_evicted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        _make_entry(cache, "a.json", 1_000)
        cache.prune(0)
        stats = cache.stats()
        assert stats["results"] == 0
        assert not os.path.exists(
            os.path.join(cache.directory, PRUNE_LOCK_NAME)
        )
