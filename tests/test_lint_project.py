"""The whole-program lint layer: graph, dataflow, and the four pass families.

Four layers of coverage:

* unit tests of :mod:`repro.lint.graph` (symbol table, call resolution,
  package-scoped reachability) and :mod:`repro.lint.dataflow` (tracked
  parameter closures, field coverage) on small fixture trees;
* positive/negative fixtures per rule (KEY001/002, WIRE001/002, CKPT002,
  ASYNC001) through the ``lint_project`` helper;
* discovery pins on the real tree: the passes must actually *find* the
  Job/SecurityJob/CampaignJob contracts and the svc async roots — a pass
  that silently no-ops would otherwise look identical to a clean tree;
* end-to-end mutation tests: copy ``src/repro`` to a temp dir, seed one
  real violation (drop a field from ``job_to_wire``, add a blocking call
  to the scheduler, strip a key-blind pragma), and assert the full
  ``run_lint`` + committed-baseline pipeline flips to failing — exactly
  the CI exit-1 contract.
"""

import json
import os
import shutil

import pytest

from repro.lint import (
    ALL_RULES,
    Baseline,
    BaselineEntry,
    build_project,
    lint_project,
    load_baseline,
    render,
    run_lint,
)
from repro.lint.base import ModuleSource
from repro.lint.dataflow import (
    attribute_reads,
    constructor_coverage,
    escaped_attribute_writes,
    field_coverage,
)
from repro.lint.passes import (
    AsyncBlockingPass,
    CacheKeyPass,
    CkptFlowPass,
    WireSchemaPass,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src", "repro")
BASELINE = os.path.join(REPO_ROOT, "lint-baseline.json")

PROJECT_PASSES = [
    CacheKeyPass(), WireSchemaPass(), CkptFlowPass(), AsyncBlockingPass(),
]


def modules_from(files):
    return [
        ModuleSource.from_text(text, path)
        for path, text in sorted(files.items())
    ]


def rules_hit(files):
    return {f.rule_id for f in lint_project(files)}


# ----------------------------------------------------------------------
# graph: symbol table and call resolution
# ----------------------------------------------------------------------

GRAPH_FILES = {
    "src/repro/analysis/alpha.py": '''
from repro.analysis.beta import helper, Widget

class Base:
    def shared(self):
        return 1

class Thing(Base):
    def top(self):
        self.middle()
        self.shared()

    def middle(self):
        helper()
        Widget()
''',
    "src/repro/analysis/beta.py": '''
def helper():
    return leaf()

def leaf():
    return 0

class Widget:
    def __init__(self):
        self.x = 0
''',
    "src/repro/svc/gamma.py": '''
from repro.analysis.beta import leaf

def svc_side():
    return leaf()
''',
}


def test_graph_indexes_functions_classes_and_methods():
    project = build_project(modules_from(GRAPH_FILES))
    assert "analysis.beta.helper" in project.functions
    assert "analysis.alpha.Thing.top" in project.functions
    assert "analysis.alpha.Thing" in project.classes
    assert project.classes["analysis.beta.Widget"].methods["__init__"]


def test_graph_resolves_self_import_and_constructor_calls():
    project = build_project(modules_from(GRAPH_FILES))
    callees = {
        s.callee for s in project.calls_from("analysis.alpha.Thing.top")
    }
    assert "analysis.alpha.Thing.middle" in callees
    # Inherited method resolves through the base-class walk.
    assert "analysis.alpha.Base.shared" in callees
    callees = {
        s.callee for s in project.calls_from("analysis.alpha.Thing.middle")
    }
    assert "analysis.beta.helper" in callees            # import binding
    assert "analysis.beta.Widget.__init__" in callees   # constructor


def test_graph_reachability_is_transitive_and_package_scoped():
    project = build_project(modules_from(GRAPH_FILES))
    origin = project.reachable(["analysis.alpha.Thing.top"])
    assert "analysis.beta.leaf" in origin           # top -> middle -> helper -> leaf
    assert origin["analysis.beta.leaf"] == "analysis.alpha.Thing.top"
    scoped = project.reachable(["svc.gamma.svc_side"], package="svc")
    assert "analysis.beta.leaf" not in scoped       # stays inside svc


# ----------------------------------------------------------------------
# dataflow: tracked values and field coverage
# ----------------------------------------------------------------------

DATAFLOW_FILES = {
    "src/repro/analysis/jobs.py": '''
from dataclasses import dataclass

@dataclass(frozen=True)
class Parcel:
    alpha: int = 0
    beta: int = 0
    gamma: int = 0

def entry(parcel: Parcel):
    return relay(parcel)

def relay(p):
    use(p.alpha)
    return deep(thing=p)

def deep(thing):
    return thing.beta

def use(x):
    return x
''',
}


def test_attribute_reads_follow_positional_and_keyword_arguments():
    project = build_project(modules_from(DATAFLOW_FILES))
    cls = project.classes["analysis.jobs.Parcel"]
    reads = {(a.attr, a.function) for a in attribute_reads(project, cls)}
    assert ("alpha", "analysis.jobs.relay") in reads
    assert ("beta", "analysis.jobs.deep") in reads
    assert not any(attr == "gamma" for attr, _ in reads)


def test_field_coverage_dict_keys_reads_and_asdict_pops():
    files = {
        "src/repro/analysis/cov.py": '''
from dataclasses import asdict, dataclass

@dataclass
class Rec:
    a: int = 0
    b: int = 0
    c: int = 0
    d: int = 0

def explicit(rec: Rec):
    return {"a": rec.a, "b": 1}

def whole(rec: Rec, skip: bool):
    fields = asdict(rec)
    fields.pop("c")
    if skip:
        fields.pop("d")
    return fields
''',
    }
    project = build_project(modules_from(files))
    fields = {"a", "b", "c", "d"}
    explicit = field_coverage(
        project.functions["analysis.cov.explicit"], "rec", fields
    )
    assert explicit.covered == {"a", "b"}
    assert not explicit.from_asdict
    whole = field_coverage(
        project.functions["analysis.cov.whole"], "rec", fields
    )
    # Unconditional pop removes c; the pop under `if` keeps d covered.
    assert whole.covered == {"a", "b", "d"}
    assert whole.from_asdict


def test_constructor_coverage_kwargs_vs_splat():
    files = {
        "src/repro/analysis/ctor.py": '''
from dataclasses import dataclass

@dataclass
class Rec:
    a: int = 0
    b: int = 0

def narrow(data):
    return Rec(a=data["a"])

def splat(data):
    return Rec(**data)
''',
    }
    project = build_project(modules_from(files))
    fields = {"a", "b"}
    narrow = constructor_coverage(
        project.functions["analysis.ctor.narrow"], "Rec", fields
    )
    assert narrow.covered == {"a"}
    splat = constructor_coverage(
        project.functions["analysis.ctor.splat"], "Rec", fields
    )
    assert splat.covered == fields


def test_escaped_writes_are_seen_and_own_methods_are_not():
    files = {
        "src/repro/mc/owner.py": '''
class Gadget:
    def __init__(self):
        self.inside = 0
        wire(self)

def wire(gadget: Gadget):
    gadget.outside = 1
''',
    }
    project = build_project(modules_from(files))
    cls = project.classes["mc.owner.Gadget"]
    writes = {(a.attr, a.function) for a in escaped_attribute_writes(project, cls)}
    assert ("outside", "mc.owner.wire") in writes
    assert not any(attr == "inside" for attr, _ in writes)


# ----------------------------------------------------------------------
# KEY001 / KEY002 fixtures
# ----------------------------------------------------------------------

def key_fixture(field_comment="", key_fields='"workload": job.workload,'):
    return {
        "src/repro/analysis/kf.py": f'''
from dataclasses import dataclass

@dataclass(frozen=True)
class Job:
    workload: str = "x"
    seed: int = 0
    backend: str = "scalar"{field_comment}

def job_key(job: Job) -> str:
    payload = {{
        {key_fields}
        "seed": job.seed,
    }}
    return str(payload)

def execute(job: Job):
    pick(job.backend)
    return job.workload

def pick(backend):
    return backend
''',
    }


def test_key001_flags_read_but_unkeyed_field():
    findings = lint_project(key_fixture())
    key = [f for f in findings if f.rule_id == "KEY001"]
    assert len(key) == 1
    assert "Job.backend" in key[0].message
    assert "key-blind[backend]" in key[0].message


def test_key001_silenced_by_key_blind_pragma():
    files = key_fixture(field_comment="  # repro: key-blind[backend]")
    assert "KEY001" not in rules_hit(files)
    assert "KEY002" not in rules_hit(files)


def test_key001_clean_when_field_is_keyed():
    files = key_fixture(
        key_fields='"workload": job.workload, "backend": job.backend,'
    )
    assert "KEY001" not in rules_hit(files)


def test_key002_flags_pragma_on_keyed_field():
    files = key_fixture(
        field_comment="  # repro: key-blind[backend]",
        key_fields='"workload": job.workload, "backend": job.backend,',
    )
    key002 = [f for f in lint_project(files) if f.rule_id == "KEY002"]
    assert len(key002) == 1
    assert "stale" in key002[0].message


def test_key002_flags_pragma_on_unknown_field():
    files = key_fixture(field_comment="  # repro: key-blind[nonesuch]")
    messages = [
        f.message for f in lint_project(files) if f.rule_id == "KEY002"
    ]
    assert any("nonesuch" in m for m in messages)


def test_key001_asdict_key_with_unconditional_pop():
    files = {
        "src/repro/analysis/kf2.py": '''
from dataclasses import asdict, dataclass

@dataclass(frozen=True)
class SecurityJob:
    attack: str = "a"
    backend: str = "numpy"

def security_job_key(job: SecurityJob) -> str:
    fields = asdict(job)
    fields.pop("backend")
    return str(fields)

def run(job: SecurityJob):
    return (job.attack, job.backend)
''',
    }
    key = [f for f in lint_project(files) if f.rule_id == "KEY001"]
    assert len(key) == 1
    assert "SecurityJob.backend" in key[0].message


# ----------------------------------------------------------------------
# WIRE001 fixtures
# ----------------------------------------------------------------------

WIRE_OK = {
    "src/repro/analysis/wf.py": '''
from dataclasses import dataclass

@dataclass(frozen=True)
class Job:
    workload: str = "x"
    seed: int = 0

def job_to_wire(job: Job) -> dict:
    return {"kind": "sim", "workload": job.workload, "seed": job.seed}

def job_from_wire(data: dict) -> Job:
    return Job(workload=data["workload"], seed=data["seed"])
''',
}


def test_wire001_clean_on_covering_codecs():
    assert "WIRE001" not in rules_hit(WIRE_OK)


def test_wire001_flags_field_missing_from_encoder():
    files = {
        "src/repro/analysis/wf.py": WIRE_OK[
            "src/repro/analysis/wf.py"
        ].replace(' "seed": job.seed}', "}"),
    }
    wire = [f for f in lint_project(files) if f.rule_id == "WIRE001"]
    assert any(
        "Job.seed" in f.message and "job_to_wire" in f.message for f in wire
    )


def test_wire001_flags_field_missing_from_decoder():
    files = {
        "src/repro/analysis/wf.py": WIRE_OK[
            "src/repro/analysis/wf.py"
        ].replace(', seed=data["seed"])', ")"),
    }
    wire = [f for f in lint_project(files) if f.rule_id == "WIRE001"]
    assert any(
        "Job.seed" in f.message and "job_from_wire" in f.message
        for f in wire
    )


def test_wire001_splat_decoder_covers_everything():
    files = {
        "src/repro/analysis/wf.py": WIRE_OK[
            "src/repro/analysis/wf.py"
        ].replace(
            'Job(workload=data["workload"], seed=data["seed"])',
            "Job(**data)",
        ),
    }
    assert "WIRE001" not in rules_hit(files)


# ----------------------------------------------------------------------
# WIRE002 fixtures
# ----------------------------------------------------------------------

def svc_fixture(ops='("ping", "submit")', handled=("ping", "submit"),
                called=("ping", "submit")):
    branches = "\n".join(
        f'    if op == "{name}":\n        return {{"ok": True}}'
        for name in handled
    )
    calls = "\n".join(
        f'    def {name}(self):\n        return self._call("{name}")'
        for name in called
    )
    return {
        "src/repro/svc/protocol.py": f"OPS = {ops}\n",
        "src/repro/svc/scheduler.py": f'''
def serve(op):
{branches}
    return {{"ok": False}}
''',
        "src/repro/svc/client.py": f'''
class SweepClient:
    def _call(self, op, **fields):
        return {{"op": op}}
{calls}
''',
    }


def test_wire002_clean_when_all_three_agree():
    assert "WIRE002" not in rules_hit(svc_fixture())


def test_wire002_flags_op_without_daemon_branch():
    files = svc_fixture(handled=("ping",))
    wire = [f for f in lint_project(files) if f.rule_id == "WIRE002"]
    assert any(
        "'submit'" in f.message and "no daemon branch" in f.message
        for f in wire
    )


def test_wire002_flags_op_unknown_to_client():
    files = svc_fixture(called=("ping",))
    wire = [f for f in lint_project(files) if f.rule_id == "WIRE002"]
    assert any(
        "'submit'" in f.message and "never issues" in f.message
        for f in wire
    )


def test_wire002_flags_handled_and_called_ops_missing_from_ops():
    files = svc_fixture(
        handled=("ping", "submit", "mystery"),
        called=("ping", "submit", "rogue"),
    )
    wire = [f for f in lint_project(files) if f.rule_id == "WIRE002"]
    assert any("'mystery'" in f.message for f in wire)
    assert any("'rogue'" in f.message for f in wire)


# ----------------------------------------------------------------------
# CKPT002 fixtures
# ----------------------------------------------------------------------

def ckpt_fixture(contract='state=("raa",)', write="tracker.hooks = 1"):
    return {
        "src/repro/mc/cf.py": f'''
from repro.ckpt.contract import checkpointable

@checkpointable({contract})
class Tracker:
    def __init__(self):
        self.raa = 0
        attach(self)

def attach(tracker: Tracker):
    {write}
''',
    }


def test_ckpt002_flags_escaped_write_missing_from_contract():
    findings = [
        f for f in lint_project(ckpt_fixture()) if f.rule_id == "CKPT002"
    ]
    assert len(findings) == 1
    assert "`hooks`" in findings[0].message
    assert "mc.cf.attach" in findings[0].message


def test_ckpt002_clean_when_contract_declares_the_attribute():
    files = ckpt_fixture(contract='state=("raa",), derived=("hooks",)')
    assert "CKPT002" not in rules_hit(files)


def test_ckpt002_skips_non_literal_contracts():
    files = ckpt_fixture(contract="state=tuple(COMPUTED)")
    assert "CKPT002" not in rules_hit(files)


def test_ckpt002_ignores_writes_inside_own_methods():
    files = {
        "src/repro/mc/cf.py": '''
from repro.ckpt.contract import checkpointable

@checkpointable(state=("raa",))
class Tracker:
    def __init__(self):
        self.raa = 0
        self.undeclared = 1   # CKPT001/runtime walk territory, not 002
''',
    }
    assert "CKPT002" not in rules_hit(files)


# ----------------------------------------------------------------------
# ASYNC001 fixtures
# ----------------------------------------------------------------------

def test_async001_flags_blocking_sleep_through_a_sync_helper():
    files = {
        "src/repro/svc/loop.py": '''
import time

async def scheduler_loop():
    tick()

def tick():
    time.sleep(0.1)
''',
    }
    findings = [
        f for f in lint_project(files) if f.rule_id == "ASYNC001"
    ]
    assert len(findings) == 1
    assert "time.sleep" in findings[0].message
    # The finding names the async root the blocking call is reachable from.
    assert "svc.loop.scheduler_loop" in findings[0].message


def test_async001_awaited_sleep_and_wait_for_wait_are_fine():
    files = {
        "src/repro/svc/loop.py": '''
import asyncio

async def scheduler_loop(event):
    await asyncio.sleep(0.05)
    await asyncio.wait_for(event.wait(), timeout=1.0)
''',
    }
    assert "ASYNC001" not in rules_hit(files)


def test_async001_flags_zero_arg_join_but_not_str_join():
    files = {
        "src/repro/svc/loop.py": '''
async def reaper(worker, names):
    worker.process.join()
    return ", ".join(names)
''',
    }
    findings = [f for f in lint_project(files) if f.rule_id == "ASYNC001"]
    assert len(findings) == 1
    assert "join" in findings[0].message


def test_async001_flags_subprocess_and_open_in_async_bodies():
    files = {
        "src/repro/svc/loop.py": '''
import subprocess

async def handler(path):
    subprocess.run(["true"])
    with open(path) as f:
        return f.read()
''',
    }
    hit = [f for f in lint_project(files) if f.rule_id == "ASYNC001"]
    assert any("subprocess.run" in f.message for f in hit)
    assert any("open(" in f.message for f in hit)


def test_async001_open_in_sync_helper_is_not_flagged():
    files = {
        "src/repro/svc/loop.py": '''
async def handler(path):
    return load(path)

def load(path):
    with open(path) as f:
        return f.read()
''',
    }
    assert "ASYNC001" not in rules_hit(files)


def test_async001_ignores_functions_outside_svc():
    files = {
        "src/repro/analysis/batch.py": '''
import time

async def not_the_daemon():
    time.sleep(1.0)
''',
    }
    assert "ASYNC001" not in rules_hit(files)


# ----------------------------------------------------------------------
# Real-tree discovery pins
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def real_project():
    from repro.lint.driver import discover_files, _display_path

    modules = []
    for filename in discover_files([SRC]):
        with open(filename, "r", encoding="utf-8") as handle:
            text = handle.read()
        modules.append(
            ModuleSource.from_text(text, _display_path(filename, REPO_ROOT))
        )
    return build_project(modules)


def test_real_tree_discovers_all_three_key_contracts(real_project):
    """Guard against the pass silently no-opping: the contracts exist."""
    from repro.lint.passes.cache_key import (
        KEYED_CONTRACTS, _unique_class, _unique_function,
    )

    for class_name, key_name in KEYED_CONTRACTS:
        assert _unique_class(real_project, class_name) is not None, class_name
        assert _unique_function(real_project, key_name) is not None, key_name


def test_real_tree_key_blind_fields_are_actually_read(real_project):
    """The committed pragmas are load-bearing, not decoration: each
    pragma'd field really is read on the execution path, so deleting the
    pragma must resurface KEY001 (the mutation test below proves it)."""
    cls = real_project.classes_by_name["Job"][0]
    reads = {a.attr for a in attribute_reads(real_project, cls)}
    assert {"backend", "segment_cycles"} <= reads


def test_real_tree_svc_async_roots_exist(real_project):
    roots = [
        f.qname for f in real_project.functions_in_package("svc")
        if f.is_async
    ]
    assert "svc.scheduler.SweepService._scheduler_loop" in roots
    assert "svc.scheduler.SweepService._serve_one" in roots


def test_real_tree_is_clean_for_all_project_passes():
    """The committed tree needs no baseline help for the new passes."""
    result = run_lint([SRC], passes=PROJECT_PASSES, relative_to=REPO_ROOT)
    assert result.findings == [], "\n".join(
        f"{f.location()}: {f.rule_id}: {f.message}" for f in result.findings
    )


# ----------------------------------------------------------------------
# End-to-end mutation tests: seeded violations must flip CI to failing
# ----------------------------------------------------------------------

def mutated_tree_result(tmp_path, rel_path, old, new):
    """Copy src/repro, apply one text mutation, run the full CI pipeline."""
    tree = tmp_path / "src" / "repro"
    shutil.copytree(SRC, tree)
    target = tree / rel_path
    text = target.read_text()
    assert old in text, f"mutation anchor vanished from {rel_path}: {old!r}"
    target.write_text(text.replace(old, new))
    return run_lint(
        [str(tree)],
        baseline=load_baseline(BASELINE),
        relative_to=str(tmp_path),
    )


def test_mutation_dropping_wire_field_fails_the_build(tmp_path):
    result = mutated_tree_result(
        tmp_path, "analysis/runner.py",
        '        "backend": job.backend,\n', "",
    )
    assert not result.ok
    assert any(
        f.rule_id == "WIRE001" and "Job.backend" in f.message
        for f in result.new_findings
    )


def test_mutation_blocking_scheduler_call_fails_the_build(tmp_path):
    result = mutated_tree_result(
        tmp_path, "svc/scheduler.py",
        "            if op == \"ping\":",
        "            time.sleep(0.01)\n            if op == \"ping\":",
    )
    assert not result.ok
    assert any(
        f.rule_id == "ASYNC001" and "time.sleep" in f.message
        for f in result.new_findings
    )


def test_mutation_removing_key_blind_pragma_fails_the_build(tmp_path):
    result = mutated_tree_result(
        tmp_path, "analysis/runner.py",
        'backend: str = "scalar"  # repro: key-blind[backend]',
        'backend: str = "scalar"',
    )
    assert not result.ok
    assert any(
        f.rule_id == "KEY001" and "Job.backend" in f.message
        for f in result.new_findings
    )


def test_mutation_dropping_shutdown_branch_fails_the_build(tmp_path):
    result = mutated_tree_result(
        tmp_path, "svc/scheduler.py",
        'if op == "shutdown":', 'if op == "never":',
    )
    assert not result.ok
    assert any(
        f.rule_id == "WIRE002" and "'shutdown'" in f.message
        for f in result.new_findings
    )


# ----------------------------------------------------------------------
# SARIF shape for whole-program findings
# ----------------------------------------------------------------------

NEW_RULE_IDS = (
    "KEY001", "KEY002", "WIRE001", "WIRE002", "CKPT002", "ASYNC001",
)


def write_key_fixture_tree(tmp_path):
    source = key_fixture()["src/repro/analysis/kf.py"]
    target = tmp_path / "src" / "repro" / "analysis"
    target.mkdir(parents=True)
    (target / "kf.py").write_text(source)
    return str(tmp_path / "src" / "repro")


def test_new_rules_are_registered_with_metadata():
    for rule_id in NEW_RULE_IDS:
        rule = ALL_RULES[rule_id]
        assert rule.name, rule_id
        assert rule.summary, rule_id


def test_sarif_driver_rules_include_whole_program_rules(tmp_path):
    tree = write_key_fixture_tree(tmp_path)
    result = run_lint([tree], relative_to=str(tmp_path))
    payload = json.loads(render(result, "sarif"))
    assert payload["version"] == "2.1.0"
    rules = {r["id"]: r for r in payload["runs"][0]["tool"]["driver"]["rules"]}
    for rule_id in NEW_RULE_IDS:
        assert rule_id in rules
        assert rules[rule_id]["shortDescription"]["text"]
        assert rules[rule_id]["helpUri"]


def test_sarif_whole_program_finding_has_physical_location(tmp_path):
    tree = write_key_fixture_tree(tmp_path)
    result = run_lint([tree], relative_to=str(tmp_path))
    payload = json.loads(render(result, "sarif"))
    key = [
        r for r in payload["runs"][0]["results"] if r["ruleId"] == "KEY001"
    ]
    assert len(key) == 1
    assert key[0]["level"] == "error"   # NEW findings are errors
    location = key[0]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith(
        "src/repro/analysis/kf.py"
    )
    region = location["region"]
    assert region["startLine"] >= 1 and region["startColumn"] >= 1


def test_sarif_baselined_whole_program_finding_is_external(tmp_path):
    tree = write_key_fixture_tree(tmp_path)
    # Derive the baseline entry from the live finding so the anchor
    # context matches exactly the way a real `--update-baseline` would.
    (finding,) = run_lint(
        [tree], relative_to=str(tmp_path)
    ).new_findings
    baseline = Baseline(entries=[BaselineEntry(
        rule=finding.rule_id,
        path=finding.path,
        context=finding.context,
        justification="fixture: grandfathered for the SARIF shape test",
    )])
    result = run_lint([tree], baseline=baseline, relative_to=str(tmp_path))
    assert result.ok
    payload = json.loads(render(result, "sarif"))
    (res,) = payload["runs"][0]["results"]
    assert res["level"] == "warning"    # baselined findings are warnings
    (suppression,) = res["suppressions"]
    assert suppression["kind"] == "external"
    assert "fixture" in suppression["justification"]


# ----------------------------------------------------------------------
# `lint --changed` scoping (the make lint-fast path)
# ----------------------------------------------------------------------

def _git(args, cwd):
    import subprocess

    subprocess.run(
        ["git"] + args, cwd=cwd, check=True, capture_output=True,
        env={**os.environ,
             "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
             "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"},
    )


def test_git_changed_files_sees_modified_and_untracked_python(
    tmp_path, monkeypatch
):
    from repro.cli import _git_changed_files

    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "stable.py").write_text("x = 1\n")
    (pkg / "touched.py").write_text("y = 1\n")
    (tmp_path / "outside.py").write_text("z = 1\n")
    _git(["init", "-q"], tmp_path)
    _git(["add", "."], tmp_path)
    _git(["commit", "-qm", "seed"], tmp_path)
    (pkg / "touched.py").write_text("y = 2\n")
    (pkg / "fresh.py").write_text("w = 1\n")          # untracked
    (pkg / "notes.txt").write_text("not python\n")    # wrong suffix
    (tmp_path / "outside.py").write_text("z = 2\n")   # outside scope
    monkeypatch.chdir(tmp_path)
    changed = _git_changed_files(["pkg"])
    assert changed is not None
    assert sorted(os.path.basename(p) for p in changed) == [
        "fresh.py", "touched.py",
    ]


def test_git_changed_files_returns_none_outside_a_checkout(
    tmp_path, monkeypatch
):
    from repro.cli import _git_changed_files

    monkeypatch.chdir(tmp_path)
    assert _git_changed_files(["pkg"]) is None


# ----------------------------------------------------------------------
# Wall-time budget
# ----------------------------------------------------------------------

def test_full_tree_interprocedural_lint_meets_time_budget():
    import time

    if os.environ.get("REPRO_SKIP_PERF_TESTS", "") == "1":
        pytest.skip("perf tests disabled via REPRO_SKIP_PERF_TESTS=1")
    start = time.perf_counter()
    run_lint([SRC], baseline=load_baseline(BASELINE), relative_to=REPO_ROOT)
    elapsed = time.perf_counter() - start
    assert elapsed < 10.0, f"full-tree lint took {elapsed:.1f}s (budget 10s)"
