"""Tests for the BlockHammer-style rate limiter."""

import pytest

from repro.cpu.system import build_mapping, simulate
from repro.mc.blockhammer import BlockHammerLimiter, CountingBloomFilter
from repro.mc.setup import MitigationSetup
from repro.workloads.adversarial import hammer_trace
from tests.test_system import make_traces


class TestCountingBloomFilter:
    def test_never_undercounts(self):
        bloom = CountingBloomFilter(bits=256, hashes=4)
        for _ in range(10):
            bloom.insert(42)
        assert bloom.estimate(42) >= 10

    def test_unseen_keys_mostly_zero(self):
        bloom = CountingBloomFilter(bits=4096, hashes=4)
        bloom.insert(1)
        zero = sum(1 for key in range(100, 200) if bloom.estimate(key) == 0)
        assert zero > 90

    def test_clear(self):
        bloom = CountingBloomFilter(bits=64, hashes=2)
        bloom.insert(5)
        bloom.clear()
        assert bloom.estimate(5) == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(bits=0, hashes=1)


class TestLimiter:
    def make(self, small_config, trh=100):
        return BlockHammerLimiter(small_config, trh=trh)

    def test_cold_rows_unthrottled(self, small_config):
        limiter = self.make(small_config)
        assert limiter.earliest_act(0, 5, now=0) == 0
        limiter.observe(0, 5, now=0)
        assert limiter.earliest_act(0, 5, now=10) == 0

    def test_hot_row_gets_throttled(self, small_config):
        limiter = self.make(small_config, trh=100)
        now = 0
        for _ in range(limiter.blacklist_threshold + 1):
            limiter.observe(0, 7, now)
            now += 200
        assert limiter.is_blacklisted(0, 7)
        assert limiter.earliest_act(0, 7, now) >= now

    def test_throttle_enforces_safe_rate(self, small_config):
        """The spacing guarantees < trh ACTs per tREFW."""
        limiter = self.make(small_config, trh=100)
        assert limiter.throttle_delay >= small_config.timing.trefw // 100

    def test_other_rows_unaffected(self, small_config):
        limiter = self.make(small_config, trh=100)
        now = 0
        for _ in range(limiter.blacklist_threshold + 1):
            limiter.observe(0, 7, now)
            now += 200
        assert limiter.earliest_act(0, 8, now) == 0
        assert limiter.earliest_act(1, 7, now) == 0

    def test_epoch_rotation_forgets(self, small_config):
        limiter = self.make(small_config, trh=100)
        for i in range(limiter.blacklist_threshold + 1):
            limiter.observe(0, 7, now=i)
        later = 2 * limiter.epoch_cycles + 10
        limiter.observe(0, 9, later)  # triggers two rotations worth of aging
        limiter.observe(0, 9, later + limiter.epoch_cycles + 1)
        assert limiter.earliest_act(0, 7, later + limiter.epoch_cycles + 2) == 0

    def test_rejects_tiny_trh(self, small_config):
        with pytest.raises(ValueError):
            BlockHammerLimiter(small_config, trh=1)


class TestBlockHammerSystem:
    def test_benign_run_negligible_cost(self, small_config):
        traces = make_traces(small_config, n=800)
        base = simulate(traces, MitigationSetup("none"), small_config, "zen")
        bh = simulate(
            traces,
            MitigationSetup("blockhammer", blockhammer_trh=1000),
            small_config,
            "zen",
        )
        assert abs(bh.slowdown_vs(base)) < 0.05

    def test_attacker_act_rate_capped(self, small_config):
        """A two-row hammer gets its ACT rate limited below TRH per tREFW."""
        mapping = build_mapping("zen", small_config)
        trh = 64
        attacker = hammer_trace(mapping, [1000, 1002], num_requests=3000)
        idle = attacker.sliced(0)
        result = simulate(
            [attacker, idle],
            MitigationSetup("blockhammer", blockhammer_trh=trh),
            small_config,
            "zen",
        )
        limiter_rate_cap = trh / small_config.timing.trefw  # ACTs per cycle
        total_acts = result.stats.total_activations
        # Two throttled rows: the whole run cannot beat ~2x the cap (plus
        # the pre-blacklist burst).
        measured_rate = total_acts / result.stats.cycles
        assert measured_rate < 4 * limiter_rate_cap + 0.001
        assert result.stats.cycles > 3000 * 100  # visibly stretched