"""Tests for AQUA-style quarantine migration."""

import numpy as np
import pytest

from repro.core.rowswap import QUARANTINE_MOVE_ROW_CYCLES, QuarantineMitigation
from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.security.montecarlo import run_attack
from repro.trackers.base import MitigationRequest
from repro.trackers.mint import MintTracker
from repro.workloads.attacks import double_sided
from tests.test_system import make_traces

ROWS = 4096


def make(slots_fraction=1 / 64, seed=0):
    return QuarantineMitigation(
        ROWS, np.random.default_rng(seed), quarantine_fraction=slots_fraction
    )


class TestQuarantine:
    def test_identity_before_any_move(self):
        policy = make()
        assert policy.physical_row(100) == 100
        assert policy.quarantined_rows() == 0

    def test_relocate_moves_into_quarantine_area(self):
        policy = make()
        old, new = policy.relocate(MitigationRequest(row=100))
        assert old == 100
        assert new >= policy.quarantine_base
        assert policy.physical_row(100) == new

    def test_no_victim_refreshes(self):
        policy = make()
        assert policy.victims(MitigationRequest(row=5)) == []

    def test_fifo_eviction_returns_row_home(self):
        policy = QuarantineMitigation(
            ROWS, np.random.default_rng(0), quarantine_fraction=2 / ROWS
        )
        assert policy.slots == 2
        policy.relocate(MitigationRequest(row=10))
        policy.relocate(MitigationRequest(row=20))
        policy.relocate(MitigationRequest(row=30))  # evicts row 10
        assert policy.physical_row(10) == 10
        assert policy.evictions == 1
        assert policy.quarantined_rows() == 2

    def test_requarantine_same_row_keeps_mapping_consistent(self):
        policy = QuarantineMitigation(
            ROWS, np.random.default_rng(0), quarantine_fraction=4 / ROWS
        )
        policy.relocate(MitigationRequest(row=10))
        policy.relocate(MitigationRequest(row=10))
        assert policy.quarantined_rows() == 1
        # Occupancy bookkeeping stays consistent: filling the remaining
        # slots never evicts more rows than were quarantined.
        for row in (20, 30, 40):
            policy.relocate(MitigationRequest(row=row))
        physicals = {policy.physical_row(r) for r in (10, 20, 30, 40)}
        assert len(physicals) == 4  # no aliasing

    def test_quarantine_area_rows_not_moved(self):
        policy = make()
        base = policy.quarantine_base
        old, new = policy.relocate(MitigationRequest(row=base + 1))
        assert old == new == base + 1
        assert policy.moves == 0

    def test_cheaper_than_full_swap(self):
        policy = make()
        assert policy.busy_cycles(192) == QUARANTINE_MOVE_ROW_CYCLES * 192

    def test_rejects_full_bank_quarantine(self):
        with pytest.raises(ValueError):
            QuarantineMitigation(
                ROWS, np.random.default_rng(0), quarantine_fraction=1.0
            )


class TestQuarantineSecurity:
    def test_attack_pressure_bounded(self):
        tracker = MintTracker(window=4, rng=np.random.default_rng(3))
        policy = QuarantineMitigation(1 << 17, np.random.default_rng(4))
        result = run_attack(
            double_sided(50_000, 30_000), tracker, policy, window=4
        )
        assert result.mitigations > 1000
        assert result.max_pressure < 500


class TestQuarantineTiming:
    def test_simulation_with_aqua_policy(self, small_config):
        traces = make_traces(small_config, n=600)
        setup = MitigationSetup("autorfm", threshold=4, policy="aqua")
        result = simulate(traces, setup, small_config, "rubix")
        assert result.stats.total_row_swaps > 0

    def test_aqua_cheaper_than_rowswap(self, small_config):
        traces = make_traces(small_config, n=1000)
        base = simulate(traces, MitigationSetup("none"), small_config, "zen")
        aqua = simulate(
            traces,
            MitigationSetup("autorfm", threshold=4, policy="aqua"),
            small_config,
            "zen",
        )
        swap = simulate(
            traces,
            MitigationSetup("autorfm", threshold=4, policy="rowswap"),
            small_config,
            "zen",
        )
        assert aqua.slowdown_vs(base) < swap.slowdown_vs(base)
