"""Property-based battery for the payload DSL (hypothesis).

Three families of properties, plus a parser fuzzer:

* **Round-trip** — ``format_program`` is a fixed point of the parser:
  re-parsing canonical text reproduces it exactly, and ``normalize`` is
  idempotent on arbitrary generated programs.
* **Commutation** — resolving placeholders then unrolling equals textual
  substitution then unrolling: binding is pure value substitution, with
  no evaluation-order surprises.
* **Budgets** — the unrolled activation count is exactly
  ``min(count_activations(program), budget)`` for finite programs, and
  exactly ``budget`` for unbounded ones; compiled rows mirror the act
  stream one-to-one.
* **Fuzz** — random token soup thrown at the parser either parses or
  raises :class:`PayloadError`; nothing else may escape, and every
  successful parse must round-trip.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.payload import (
    PayloadError,
    compile_payload,
    count_activations,
    format_program,
    normalize,
    parse,
    resolve,
    unroll,
)
from repro.payload.nodes import BinOp, Instr, Loop, Num, Param, Program, Var

PARAMS = ("p", "q")
LOOP_VARS = ("i", "j")

#: Values kept non-negative so generated programs never trip the
#: negative-row/count guards (those have their own unit tests).
values = st.integers(min_value=0, max_value=50)


def exprs(variables):
    """Non-negative integer expressions over params and bound loop vars."""
    leaves = [st.builds(Num, values), st.builds(Param, st.sampled_from(PARAMS))]
    if variables:
        leaves.append(st.builds(Var, st.sampled_from(sorted(variables))))
    return st.recursive(
        st.one_of(*leaves),
        lambda sub: st.builds(
            BinOp, st.sampled_from(["+", "*"]), sub, sub
        ),
        max_leaves=4,
    )


def instrs(variables):
    return st.one_of(
        st.builds(lambda e: Instr("act", e), exprs(variables)),
        st.builds(lambda e: Instr("nop", e), exprs(variables)),
        st.just(Instr("pre")),
        st.just(Instr("ref")),
        st.just(Instr("rfm")),
        st.just(Instr("sync_ref")),
    )


def bodies(variables, depth):
    """Non-empty statement tuples; loops nest up to ``depth`` levels."""
    stmt = instrs(variables)
    if depth > 0:
        plain_loop = st.builds(
            lambda count, body: Loop(count=count, body=body),
            st.builds(Num, st.integers(min_value=0, max_value=4)),
            st.deferred(lambda: bodies(variables, depth - 1)),
        )
        free = [v for v in LOOP_VARS if v not in variables]
        if free:
            var = free[0]
            counted_loop = st.builds(
                lambda count, body: Loop(count=count, body=body, var=var),
                st.builds(Num, st.integers(min_value=0, max_value=4)),
                st.deferred(
                    lambda: bodies(variables | {var}, depth - 1)
                ),
            )
            stmt = st.one_of(stmt, plain_loop, counted_loop)
        else:
            stmt = st.one_of(stmt, plain_loop)
    return st.lists(stmt, min_size=1, max_size=4).map(tuple)


finite_programs = bodies(frozenset(), depth=2).map(
    lambda body: Program(body=body)
)


def bind_all(program):
    """Resolve every placeholder to a fixed assignment (only those used)."""
    needed = program.params()
    assignment = {"p": 7, "q": 13}
    return resolve(program, {k: v for k, v in assignment.items()
                             if k in needed})


# ----------------------------------------------------------------------
# Round-trip
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(finite_programs)
def test_format_is_a_parser_fixed_point(program):
    text = format_program(program)
    assert format_program(parse(text)) == text


@settings(max_examples=80, deadline=None)
@given(finite_programs)
def test_normalize_is_idempotent(program):
    text = format_program(program)
    assert normalize(normalize(text)) == normalize(text)


# ----------------------------------------------------------------------
# Commutation: resolve-then-unroll == substitute-then-unroll
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(finite_programs, values, values)
def test_resolution_commutes_with_textual_substitution(program, p, q):
    needed = program.params()
    params = {k: v for k, v in (("p", p), ("q", q)) if k in needed}
    via_resolve = unroll(resolve(program, params), 200)

    text = format_program(program)
    for name, value in params.items():
        text = text.replace("{" + name + "}", str(value))
    via_text = unroll(parse(text), 200)

    assert (
        compile_payload(via_resolve).rows == compile_payload(via_text).rows
    )
    assert [i.format() for i in via_resolve] == [
        i.format() for i in via_text
    ]


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(finite_programs, st.integers(min_value=0, max_value=60))
def test_activation_count_matches_the_analytic_budget(program, budget):
    bound = bind_all(program)
    compiled = compile_payload(unroll(bound, budget))
    assert compiled.acts == min(count_activations(bound), budget)


@settings(max_examples=40, deadline=None)
@given(bodies(frozenset(), depth=1), st.integers(min_value=1, max_value=60))
def test_unbounded_hammers_hit_their_budget_exactly(body, budget):
    program = Program(body=(Loop(count=None, body=body),))
    bound = bind_all(program)
    if not any(
        count_activations(Program(body=(stmt,)), 1) for stmt in bound.body[0].body
    ):
        return  # act-free bodies are rejected by their own unit test
    compiled = compile_payload(unroll(bound, budget))
    assert compiled.acts == budget
    assert compiled.instrs[-1].op == "act"


# ----------------------------------------------------------------------
# Fuzz: only PayloadError may escape the parser
# ----------------------------------------------------------------------
TOKENS = [
    "act", "pre", "ref", "rfm", "nop", "sync_ref", "for", "in", "*", ":",
    "{", "}", "(", ")", "+", "-", "0", "7", "42", "x", "i", "row",
    "{row}", " ", "    ", "\t", "\n", "#", "comment",
]


@settings(max_examples=300, deadline=None)
@given(st.lists(st.sampled_from(TOKENS), max_size=40).map("".join))
def test_token_soup_raises_only_payload_error(text):
    try:
        program = parse(text)
    except PayloadError:
        return
    canonical = format_program(program)
    assert format_program(parse(canonical)) == canonical


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=80))
def test_arbitrary_text_raises_only_payload_error(text):
    try:
        parse(text)
    except PayloadError:
        pass
