"""Tests for trace diagnostics — and calibration checks of the catalog."""

import numpy as np
import pytest

from repro.mapping import RubixMapping, ZenMapping
from repro.sim.config import SystemConfig
from repro.workloads.catalog import WORKLOADS
from repro.workloads.trace import Trace
from repro.workloads.validation import (
    bank_spread,
    profile_table,
    reuse_distance_histogram,
    sequentiality,
    trace_profile,
)

CONFIG = SystemConfig()


def make_trace(addrs, writes=None):
    return Trace(
        gaps=[0] * len(addrs),
        addrs=list(addrs),
        writes=writes or [False] * len(addrs),
    )


class TestMetrics:
    def test_sequentiality_extremes(self):
        assert sequentiality(make_trace(range(100))) == 1.0
        assert sequentiality(make_trace([0, 500, 3, 9000])) == 0.0
        assert sequentiality(make_trace([7])) == 0.0

    def test_reuse_histogram_immediate_revisit(self):
        zen = ZenMapping(CONFIG)
        # Pair mates share a bank row: every second request revisits at
        # distance 1.
        trace = make_trace([0, 1, 0, 1, 0, 1])
        hist = reuse_distance_histogram(trace, zen)
        assert hist["<=4"] > 0.8

    def test_reuse_histogram_no_reuse(self):
        zen = ZenMapping(CONFIG)
        stride = 64 * CONFIG.lines_per_row * 64  # new row group each time
        trace = make_trace([i * stride for i in range(8)])
        hist = reuse_distance_histogram(trace, zen)
        assert hist["inf"] == 1.0

    def test_bank_spread_uniform_vs_camped(self):
        zen = ZenMapping(CONFIG)
        uniform = make_trace(range(0, 4096, 2))  # walks all banks
        camped = make_trace([0] * 100)  # one bank
        assert bank_spread(uniform, zen) > 0.9
        assert bank_spread(camped, zen) == 0.0

    def test_profile_bundle(self):
        zen = ZenMapping(CONFIG)
        profile = trace_profile(make_trace(range(64)), zen)
        for key in ("mpki", "sequentiality", "bank_spread", "reuse"):
            assert key in profile

    def test_profile_table_shape(self):
        zen = ZenMapping(CONFIG)
        rows = profile_table([make_trace(range(8))] * 3, zen)
        assert len(rows) == 3

    def test_empty_trace(self):
        zen = ZenMapping(CONFIG)
        assert reuse_distance_histogram(make_trace([]), zen) == {}
        assert bank_spread(make_trace([]), zen) == 0.0


class TestCatalogCalibration:
    """The load-bearing properties of the generator calibration."""

    def _trace(self, name, n=4000):
        return WORKLOADS[name].trace(
            num_requests=n,
            config=CONFIG,
            core_id=0,
            rng=np.random.default_rng(5),
        )

    def test_streaming_has_short_reuse_under_zen(self):
        zen = ZenMapping(CONFIG)
        hist = reuse_distance_histogram(self._trace("bwaves"), zen)
        # Pairs + neighbourhood revisits: a solid short-distance mass —
        # the source of both row hits and SAUM conflicts.
        short = hist["<=4"] + hist["<=16"] + hist["<=64"]
        assert short > 0.3

    def test_rubix_destroys_row_reuse(self):
        trace = self._trace("bwaves")
        zen_hist = reuse_distance_histogram(trace, ZenMapping(CONFIG))
        rub_hist = reuse_distance_histogram(
            trace, RubixMapping(CONFIG, key=1)
        )
        zen_short = zen_hist["<=4"] + zen_hist["<=16"]
        rub_short = rub_hist["<=4"] + rub_hist["<=16"]
        assert rub_short < 0.5 * zen_short

    def test_random_workload_spreads_banks(self):
        zen = ZenMapping(CONFIG)
        assert bank_spread(self._trace("omnetpp"), zen) > 0.9

    def test_stream_more_sequential_than_graph(self):
        assert sequentiality(self._trace("add")) > sequentiality(
            self._trace("ConnComp")
        )

    @pytest.mark.parametrize("name", ["bwaves", "mcf", "ConnComp", "add"])
    def test_mpki_matches_recipe(self, name):
        trace = self._trace(name, n=8000)
        assert trace.mpki == pytest.approx(WORKLOADS[name].mpki, rel=0.15)
