"""Tests for the Monte-Carlo attack harness and attack patterns."""

import numpy as np
import pytest

from repro.core.mitigation import BlastRadiusMitigation, FractalMitigation
from repro.security.montecarlo import run_attack
from repro.trackers.mint import MintTracker
from repro.workloads.attacks import (
    double_sided,
    half_double,
    interleave,
    round_robin_attack,
    single_sided,
)

ROWS = 1 << 17


def mint_fm(window=4, seed=0):
    tracker = MintTracker(window=window, rng=np.random.default_rng(seed))
    policy = FractalMitigation(ROWS, np.random.default_rng(seed + 1))
    return tracker, policy


def mint_rm(window=4, seed=0):
    tracker = MintTracker(
        window=window, rng=np.random.default_rng(seed), transitive_slot=True
    )
    policy = BlastRadiusMitigation(ROWS)
    return tracker, policy


class TestAttackPatterns:
    def test_round_robin(self):
        assert round_robin_attack([1, 2, 3], 7) == [1, 2, 3, 1, 2, 3, 1]

    def test_single_sided(self):
        assert single_sided(9, 3) == [9, 9, 9]

    def test_double_sided_brackets_victim(self):
        pattern = double_sided(100, 6)
        assert set(pattern) == {99, 101}

    def test_double_sided_needs_interior_victim(self):
        with pytest.raises(ValueError):
            double_sided(0, 4)

    def test_half_double_rotates_decoys(self):
        pattern = half_double(500, 20, decoys=3)
        assert pattern.count(500) == 5
        assert len(set(pattern)) == 4

    def test_interleave(self):
        out = interleave([[1], [2, 3]], 6)
        assert out == [1, 2, 1, 3, 1, 2]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            round_robin_attack([], 5)
        with pytest.raises(ValueError):
            interleave([[1], []], 4)


class TestRunAttack:
    def test_pressure_accumulates_on_neighbours(self):
        tracker, policy = mint_fm()
        result = run_attack(single_sided(1000, 3), tracker, policy, window=100)
        assert result.pressure[999] == 3.0
        assert result.pressure[1001] == 3.0
        assert result.pressure[998] == pytest.approx(0.3)  # d=2 damage

    def test_no_mitigation_before_window(self):
        tracker, policy = mint_fm(window=8)
        result = run_attack(single_sided(1000, 7), tracker, policy, window=8)
        assert result.mitigations == 0

    def test_mitigation_resets_victim_pressure(self):
        tracker, policy = mint_fm(window=4)
        result = run_attack(single_sided(1000, 4000), tracker, policy, window=4)
        assert result.mitigations == 1000
        # Hammering one row: every mitigation refreshes its neighbours, so
        # the surviving pressure is far below the activation count.
        assert result.max_pressure < 200

    def test_unmitigated_hammer_reaches_activation_count(self):
        tracker, policy = mint_fm(window=1000)
        # Window larger than the attack: no mitigation ever fires.
        result = run_attack(single_sided(1000, 500), tracker, policy, window=1000)
        assert result.max_pressure == 500.0
        assert result.max_pressure_row in (999, 1001)

    def test_refresh_interval_clears_pressure(self):
        tracker, policy = mint_fm(window=1000)
        result = run_attack(
            single_sided(1000, 100),
            tracker,
            policy,
            window=1000,
            refresh_interval_acts=100,
        )
        assert result.pressure == {}

    def test_mint_fm_bounds_round_robin_attack(self):
        # The optimal anti-MINT pattern: max pressure stays far below the
        # unmitigated count and in the vicinity of the analytical threshold.
        tracker, policy = mint_fm(seed=11)
        acts = 40_000
        pattern = round_robin_attack([2000, 2010, 2020, 2030], acts)
        result = run_attack(pattern, tracker, policy, window=4)
        assert result.mitigations == acts // 4
        assert result.max_pressure < 400  # each row got 10 000 activations

    def test_transitive_attack_defended_by_fm(self):
        """Half-Double: FM's probabilistic distant refreshes keep transitive
        pressure bounded where plain blast-2 lets it grow."""
        acts = 60_000

        def worst_transitive(tracker, policy):
            result = run_attack(
                single_sided(3000, acts), tracker, policy, window=4
            )
            # Pressure on rows at distance >= 3 comes only from victim
            # refreshes (transitive damage).
            far = {
                row: p
                for row, p in result.pressure.items()
                if abs(row - 3000) >= 3
            }
            return max(far.values(), default=0.0)

        fm_pressure = worst_transitive(*mint_fm(seed=2))
        blast2_tracker = MintTracker(window=4, rng=np.random.default_rng(2))
        blast2 = BlastRadiusMitigation(ROWS)
        blast2_pressure = worst_transitive(blast2_tracker, blast2)
        # Plain blast-2 never refreshes d>=3, so transitive pressure grows
        # with the attack; FM keeps it bounded.
        assert blast2_pressure > 4 * fm_pressure

    def test_recursive_mitigation_also_defends_transitive(self):
        acts = 60_000
        tracker, policy = mint_rm(seed=5)
        result = run_attack(single_sided(3000, acts), tracker, policy, window=4)
        far = {
            row: p for row, p in result.pressure.items() if abs(row - 3000) >= 3
        }
        assert max(far.values(), default=0.0) < 2000

    def test_rejects_bad_args(self):
        tracker, policy = mint_fm()
        with pytest.raises(ValueError):
            run_attack([1], tracker, policy, window=0)
        with pytest.raises(ValueError):
            run_attack([-1], tracker, policy, window=4)
