"""Tests for PrIDE, PARFM, and Mithril trackers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trackers.mithril import MithrilTracker
from repro.trackers.parfm import ParfmTracker
from repro.trackers.pride import PrideTracker


def rng(seed=0):
    return np.random.default_rng(seed)


class TestPride:
    def test_sampling_rate(self):
        pride = PrideTracker(sample_probability=0.25, rng=rng(1))
        inserted = 0
        for i in range(8000):
            pride.on_activation(i)
            request = pride.select_for_mitigation()
            if request is not None:
                inserted += 1
        assert 0.2 < inserted / 8000 < 0.3

    def test_fifo_order(self):
        pride = PrideTracker(sample_probability=1.0, rng=rng(0), fifo_entries=4)
        for row in (10, 11, 12):
            pride.on_activation(row)
        assert pride.select_for_mitigation().row == 10
        assert pride.select_for_mitigation().row == 11

    def test_full_fifo_drops_samples(self):
        pride = PrideTracker(sample_probability=1.0, rng=rng(0), fifo_entries=2)
        for row in range(5):
            pride.on_activation(row)
        assert pride.occupancy == 2
        assert pride.samples_dropped == 3

    def test_empty_fifo_returns_none(self):
        pride = PrideTracker(sample_probability=0.5, rng=rng(0))
        assert pride.select_for_mitigation() is None

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            PrideTracker(sample_probability=0.0, rng=rng(0))
        with pytest.raises(ValueError):
            PrideTracker(sample_probability=1.5, rng=rng(0))


class TestParfm:
    def test_selects_from_buffered_window(self):
        parfm = ParfmTracker(window=4, rng=rng(2))
        for _ in range(100):
            rows = [200, 201, 202, 203]
            for row in rows:
                parfm.on_activation(row)
            assert parfm.select_for_mitigation().row in rows

    def test_empty_window_returns_none(self):
        assert ParfmTracker(window=4, rng=rng(0)).select_for_mitigation() is None

    def test_strict_overrun_raises(self):
        parfm = ParfmTracker(window=2, rng=rng(0))
        parfm.on_activation(1)
        parfm.on_activation(2)
        with pytest.raises(RuntimeError):
            parfm.on_activation(3)

    def test_non_strict_slides(self):
        parfm = ParfmTracker(window=2, rng=rng(0), strict=False)
        for row in range(10):
            parfm.on_activation(row)
        assert parfm.select_for_mitigation().row in (8, 9)


class TestMithril:
    def test_tracks_heaviest_hitter(self):
        mithril = MithrilTracker(entries=4, rng=rng(0))
        for _ in range(50):
            mithril.on_activation(7)
        for row in (1, 2, 3):
            mithril.on_activation(row)
        assert mithril.select_for_mitigation().row == 7

    def test_mitigation_resets_count(self):
        mithril = MithrilTracker(entries=4, rng=rng(0))
        for _ in range(10):
            mithril.on_activation(5)
        mithril.select_for_mitigation()
        assert mithril.effective_count(5) == 0

    def test_empty_returns_none(self):
        assert MithrilTracker(entries=4, rng=rng(0)).select_for_mitigation() is None

    def test_decrement_when_full(self):
        mithril = MithrilTracker(entries=2, rng=rng(0))
        mithril.on_activation(1)
        mithril.on_activation(2)
        mithril.on_activation(3)  # full: global decrement, no insert
        assert mithril.effective_count(1) == 0
        assert mithril.effective_count(3) == 0

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_misra_gries_undercount_bound(self, rows):
        """The estimate undercounts by at most total/entries (MG invariant)."""
        entries = 4
        mithril = MithrilTracker(entries=entries, rng=rng(0))
        true_counts = {}
        for row in rows:
            mithril.on_activation(row)
            true_counts[row] = true_counts.get(row, 0) + 1
        for row, true in true_counts.items():
            estimate = mithril.effective_count(row)
            assert estimate <= true
            assert true - estimate <= len(rows) / entries

    def test_storage_scales_with_entries(self):
        small = MithrilTracker(entries=16, rng=rng(0)).storage_bits
        large = MithrilTracker(entries=32, rng=rng(0)).storage_bits
        assert large == 2 * small
