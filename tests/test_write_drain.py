"""Tests for the optional write-buffer/drain mode."""

import dataclasses

from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.sim.cmdlog import CommandLog
from repro.workloads.trace import Trace
from tests.test_system import make_traces


def drain_config(small_config, buffer_size=32):
    return dataclasses.replace(
        small_config, write_drain=True, write_buffer_size=buffer_size
    )


class TestWriteDrain:
    def test_all_writes_eventually_serviced(self, small_config):
        config = drain_config(small_config)
        traces = make_traces(config, n=900)
        result = simulate(traces, MitigationSetup("none"), config, "zen")
        serviced = sum(b.reads + b.writes for b in result.stats.banks)
        assert serviced == sum(len(t) for t in traces)

    def test_write_only_trace_drains_at_end(self, small_config):
        config = drain_config(small_config, buffer_size=64)
        # Fewer writes than the watermark: only the end-of-run flush (and
        # REF drains) can service them.
        n = 10
        trace = Trace(gaps=[50] * n, addrs=list(range(0, 4 * n, 4)),
                      writes=[True] * n)
        idle = trace.sliced(0)
        result = simulate([trace, idle], MitigationSetup("none"), config, "zen")
        assert sum(b.writes for b in result.stats.banks) == n

    def test_timing_audit_still_clean(self, small_config):
        config = drain_config(small_config)
        log = CommandLog()
        traces = make_traces(config, n=700)
        simulate(
            traces,
            MitigationSetup("autorfm", threshold=4),
            config,
            "rubix",
            command_log=log,
        )
        assert log.verify(config) == []

    def test_reads_prioritized_over_buffered_writes(self, small_config):
        """With drain mode on, read latency improves (writes step aside)."""
        traces = make_traces(small_config, n=1200)
        plain = simulate(traces, MitigationSetup("none"), small_config, "zen")
        drained = simulate(
            traces, MitigationSetup("none"), drain_config(small_config), "zen"
        )

        def avg_lat(result):
            cores = result.stats.cores
            return sum(c.avg_read_latency for c in cores) / len(cores)

        assert avg_lat(drained) <= avg_lat(plain) * 1.05

    def test_determinism_preserved(self, small_config):
        config = drain_config(small_config)
        traces = make_traces(config, n=600)
        a = simulate(traces, MitigationSetup("rfm", threshold=4), config, "zen")
        b = simulate(traces, MitigationSetup("rfm", threshold=4), config, "zen")
        assert a.stats.cycles == b.stats.cycles
