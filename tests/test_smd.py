"""Tests for the PARA tracker, region-granularity engine, and SMD mode."""

import numpy as np
import pytest

from repro.core.autorfm import AutoRfmEngine
from repro.core.mitigation import BlastRadiusMitigation
from repro.mc.setup import MitigationSetup
from repro.cpu.system import simulate
from repro.trackers.para import ParaTracker
from tests.test_system import make_traces


def rng(seed=0):
    return np.random.default_rng(seed)


class TestParaTracker:
    def test_samples_at_configured_rate(self):
        para = ParaTracker(probability=0.2, rng=rng(1))
        harvested = 0
        for i in range(10_000):
            para.on_activation(i)
            if para.select_for_mitigation() is not None:
                harvested += 1
        assert 0.17 < harvested / 10_000 < 0.23

    def test_pending_cleared_after_select(self):
        para = ParaTracker(probability=1.0, rng=rng(0))
        para.on_activation(5)
        assert para.select_for_mitigation().row == 5
        assert para.select_for_mitigation() is None

    def test_new_sample_overwrites_pending(self):
        para = ParaTracker(probability=1.0, rng=rng(0))
        para.on_activation(5)
        para.on_activation(6)
        assert para.select_for_mitigation().row == 6
        assert para.overwritten == 1

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            ParaTracker(probability=0.0, rng=rng(0))


class TestRegionGranularity:
    def test_default_region_is_subarray(self, small_config):
        engine = AutoRfmEngine(
            small_config,
            ParaTracker(1.0, rng(0)),
            BlastRadiusMitigation(small_config.rows_per_bank),
            autorfm_th=1,
        )
        assert engine.regions_per_bank == small_config.subarrays_per_bank
        assert engine.region_of_row(0) == small_config.subarray_of_row(0)

    def test_coarse_regions_widen_conflicts(self, small_config):
        engine = AutoRfmEngine(
            small_config,
            ParaTracker(1.0, rng(0)),
            BlastRadiusMitigation(small_config.rows_per_bank),
            autorfm_th=1,
            regions_per_bank=4,
        )
        rows_per_region = small_config.rows_per_bank // 4
        # Mitigate a row in region 1; anything in region 1 now conflicts.
        engine.on_activation(rows_per_region + 5, now=0)
        engine.on_precharge(now=144)
        t = engine.saum_busy_until - 1
        assert engine.conflicts(rows_per_region, t)
        assert engine.conflicts(2 * rows_per_region - 1, t)
        assert not engine.conflicts(0, t)
        assert not engine.conflicts(2 * rows_per_region, t)

    def test_rejects_bad_region_count(self, small_config):
        with pytest.raises(ValueError):
            AutoRfmEngine(
                small_config,
                ParaTracker(1.0, rng(0)),
                BlastRadiusMitigation(small_config.rows_per_bank),
                autorfm_th=1,
                regions_per_bank=small_config.rows_per_bank * 2,
            )
        with pytest.raises(ValueError):
            AutoRfmEngine(
                small_config,
                ParaTracker(1.0, rng(0)),
                BlastRadiusMitigation(small_config.rows_per_bank),
                autorfm_th=1,
                regions_per_bank=3,  # does not divide rows evenly
            )


class TestSmdMechanism:
    def test_smd_setup_describe(self):
        setup = MitigationSetup("smd", threshold=5)
        assert "PARA p=1/5" in setup.describe()
        assert setup.uses_tracker

    def test_smd_simulation_completes(self, small_config):
        traces = make_traces(small_config, n=500)
        result = simulate(
            traces, MitigationSetup("smd", threshold=5), small_config, "zen"
        )
        assert result.stats.cycles > 0
        assert result.stats.total_mitigations > 0

    def test_smd_conflicts_more_than_autorfm(self, small_config):
        """Coarse region locks + conventional mapping: SMD sees far more
        NACK/ALERT conflicts than subarray-granular AutoRFM on Rubix."""
        traces = make_traces(small_config, n=800)
        smd = simulate(
            traces,
            MitigationSetup("smd", threshold=4, smd_regions_per_bank=4),
            small_config,
            "zen",
        )
        auto = simulate(
            traces,
            MitigationSetup("autorfm", threshold=4, policy="fractal"),
            small_config,
            "rubix",
        )
        assert smd.stats.alerts_per_act > auto.stats.alerts_per_act

    def test_smd_mitigation_rate_tracks_probability(self, small_config):
        traces = make_traces(small_config, n=800)
        result = simulate(
            traces, MitigationSetup("smd", threshold=5), small_config, "zen"
        )
        acts = result.stats.total_activations
        rate = result.stats.total_mitigations / acts
        assert 0.15 < rate < 0.25  # p = 1/5
