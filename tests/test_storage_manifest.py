"""Checkpoint manifest round-trips and snapshot corruption detection.

Two failure stories under test: (1) the manifest is a crash-safe index —
atomic rewrites, validated on load, round-trips exactly; (2) a damaged
snapshot (truncated file, flipped bit) must fail the integrity hash with a
clear error, never deserialize into a subtly wrong system.
"""

import gzip
import json
import os

import pytest

from repro.analysis.storage import (
    MANIFEST_NAME,
    checkpoint_inventory,
    load_checkpoint_manifest,
    save_checkpoint_manifest,
)
from repro.ckpt import (
    Snapshot,
    SnapshotError,
    SnapshotIntegrityError,
    load_snapshot,
    save_snapshot,
)

ENTRIES = [
    {"file": "ckpt-000000000005000.ckpt.gz", "cycle": 4980,
     "boundary": 5000, "sha256": "ab" * 32, "bytes": 1234},
    {"file": "ckpt-000000000010000.ckpt.gz", "cycle": 9990,
     "boundary": 10000, "sha256": "cd" * 32, "bytes": 2345},
]


def _tiny_snapshot():
    return Snapshot(meta={"cycle": 42, "boundary": 100, "seed": 1},
                    payload={"x": [1, 2, 3]})


class TestManifestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        d = str(tmp_path)
        save_checkpoint_manifest(d, ENTRIES, meta={"seed": 7})
        manifest = load_checkpoint_manifest(d)
        assert manifest["entries"] == ENTRIES
        assert manifest["meta"] == {"seed": 7}

    def test_missing_manifest_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint_manifest(str(tmp_path))

    def test_corrupt_json_raises_value_error(self, tmp_path):
        path = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(path, "w") as handle:
            handle.write("{not json")
        with pytest.raises(ValueError, match="corrupt"):
            load_checkpoint_manifest(str(tmp_path))

    def test_wrong_format_rejected(self, tmp_path):
        path = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(path, "w") as handle:
            json.dump({"format": "something-else", "version": 1,
                       "entries": []}, handle)
        with pytest.raises(ValueError, match="not a checkpoint manifest"):
            load_checkpoint_manifest(str(tmp_path))

    def test_unsupported_version_rejected(self, tmp_path):
        path = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(path, "w") as handle:
            json.dump({"format": "repro-ckpt-manifest", "version": 99,
                       "entries": []}, handle)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint_manifest(str(tmp_path))

    def test_rewrite_replaces_whole_manifest(self, tmp_path):
        d = str(tmp_path)
        save_checkpoint_manifest(d, ENTRIES)
        save_checkpoint_manifest(d, ENTRIES[:1])
        assert load_checkpoint_manifest(d)["entries"] == ENTRIES[:1]


class TestSnapshotCorruption:
    def _saved(self, tmp_path):
        path = os.path.join(str(tmp_path), "snap.ckpt.gz")
        save_snapshot(_tiny_snapshot(), path)
        return path

    def test_intact_snapshot_loads(self, tmp_path):
        path = self._saved(tmp_path)
        snap = load_snapshot(path)
        assert snap.meta["cycle"] == 42
        assert snap.payload == {"x": [1, 2, 3]}

    def test_truncated_snapshot_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        with pytest.raises(SnapshotIntegrityError):
            load_snapshot(path)

    def test_bit_flip_rejected_by_digest(self, tmp_path):
        path = self._saved(tmp_path)
        # Flip one bit inside the *decompressed* body and re-gzip, so the
        # gzip CRC stays valid and only the sha256 can catch it.
        body = bytearray(gzip.decompress(open(path, "rb").read()))
        target = body.find(b'"payload"')
        body[target + 20] ^= 0x01
        with open(path, "wb") as handle:
            handle.write(gzip.compress(bytes(body)))
        with pytest.raises(SnapshotIntegrityError, match="digest|integrity"):
            load_snapshot(path)

    def test_flipped_compressed_byte_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        raw = bytearray(open(path, "rb").read())
        raw[len(raw) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        with pytest.raises(SnapshotIntegrityError):
            load_snapshot(path)

    def test_non_snapshot_gzip_rejected(self, tmp_path):
        path = os.path.join(str(tmp_path), "other.ckpt.gz")
        with open(path, "wb") as handle:
            handle.write(gzip.compress(b'{"hello": "world"}'))
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_error_message_names_the_file(self, tmp_path):
        path = self._saved(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(10)
        with pytest.raises(SnapshotIntegrityError, match="snap.ckpt.gz"):
            load_snapshot(path)


class TestInventory:
    def test_inventory_flags_each_state(self, tmp_path):
        d = str(tmp_path)
        ok_name = "ckpt-000000000000100.ckpt.gz"
        corrupt_name = "ckpt-000000000000200.ckpt.gz"
        missing_name = "ckpt-000000000000300.ckpt.gz"
        save_snapshot(_tiny_snapshot(), os.path.join(d, ok_name))
        save_snapshot(_tiny_snapshot(), os.path.join(d, corrupt_name))
        with open(os.path.join(d, corrupt_name), "r+b") as handle:
            handle.truncate(12)
        entries = [
            {"file": name, "cycle": 42, "boundary": b, "sha256": "00" * 32,
             "bytes": 1}
            for name, b in ((ok_name, 100), (corrupt_name, 200),
                            (missing_name, 300))
        ]
        save_checkpoint_manifest(d, entries)
        statuses = {r["file"]: r["status"] for r in checkpoint_inventory(d)}
        assert statuses == {ok_name: "ok", corrupt_name: "corrupt",
                            missing_name: "missing"}
