"""Checkpoint/restore: snapshot format and differential bit-identity.

The core guarantee under test: a simulation checkpointed at (roughly) its
midpoint and restored produces *byte-identical* outputs — stats export,
metrics snapshot, JSONL trace — to the same simulation run straight
through. One divergent counter anywhere in the restored system shows up
here as a JSON diff.
"""

import json
import os

import pytest

from repro.analysis.runner import result_to_dict
from repro.ckpt import (
    CheckpointWriter,
    Snapshot,
    SnapshotError,
    capture,
    fork,
    load_latest,
    load_snapshot,
    restore,
    save_snapshot,
    snapshot_digest,
)
from repro.cpu.system import SimulatedSystem, simulate
from repro.mc.setup import MitigationSetup
from repro.obs import Observability, ObsConfig
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces

REQUESTS = 400
SEED = 7


def _traces(config, workload="mcf", requests=REQUESTS, seed=SEED):
    return make_rate_traces(WORKLOADS[workload], config,
                            requests=requests, seed=seed)


def _observed():
    return Observability(ObsConfig(metrics=True, trace=True))


def _stats_json(result):
    return json.dumps(result_to_dict(result), sort_keys=True)


def _run_with_midpoint_snapshot(traces, setup, config, mapping):
    """One straight run plus a snapshot captured at its midpoint."""
    straight = simulate(traces, setup, config, mapping=mapping, seed=SEED,
                        obs=_observed())
    mid = straight.stats.cycles // 2
    captured = {}

    def on_checkpoint(system, boundary):
        if "snap" not in captured and boundary >= mid:
            captured["snap"] = capture(system, boundary=boundary)

    system = SimulatedSystem(traces, setup, config, mapping=mapping,
                             seed=SEED, obs=_observed())
    system.start()
    segmented = system.run(checkpoint_every=max(mid, 1),
                           on_checkpoint=on_checkpoint)
    assert "snap" in captured, "midpoint checkpoint never fired"
    return straight, segmented, captured["snap"]


CASES = [
    pytest.param(
        MitigationSetup(mechanism="autorfm", tracker="mint", threshold=4,
                        policy="fractal"),
        "rubix", {}, id="autorfm-mint-fractal-rubix",
    ),
    pytest.param(
        MitigationSetup(mechanism="rfm", threshold=8), "zen", {},
        id="rfm-zen",
    ),
    pytest.param(
        MitigationSetup(mechanism="rfm", threshold=8), "zen",
        {"write_drain": True}, id="rfm-zen-write-drain",
    ),
    pytest.param(
        MitigationSetup(mechanism="autorfm", tracker="hydra", threshold=4),
        "rubix", {}, id="autorfm-hydra-rubix",
    ),
    pytest.param(
        MitigationSetup(mechanism="prac"), "zen",
        {"refresh_mode": "same_bank"}, id="prac-same-bank",
    ),
]


class TestDifferentialBitIdentity:
    @pytest.mark.parametrize("setup,mapping,config_kw", CASES)
    def test_restore_matches_straight_run(self, small_config, setup, mapping,
                                          config_kw, tmp_path):
        import dataclasses

        config = (dataclasses.replace(small_config, **config_kw)
                  if config_kw else small_config)
        traces = _traces(config)
        straight, segmented, snap = _run_with_midpoint_snapshot(
            traces, setup, config, mapping
        )
        # Segmenting the drain must not change anything.
        assert _stats_json(straight) == _stats_json(segmented)

        # Round-trip the snapshot through disk before restoring.
        path = str(tmp_path / "mid.ckpt.gz")
        save_snapshot(snap, path)
        resumed = restore(load_snapshot(path)).run()

        assert _stats_json(straight) == _stats_json(resumed)
        assert json.dumps(straight.obs.metrics, sort_keys=True) == \
            json.dumps(resumed.obs.metrics, sort_keys=True)
        assert straight.obs.trace_jsonl == resumed.obs.trace_jsonl

    def test_restored_system_is_already_started(self, small_config):
        setup = MitigationSetup(mechanism="autorfm", tracker="mint",
                                threshold=4)
        traces = _traces(small_config)
        _, _, snap = _run_with_midpoint_snapshot(
            traces, setup, small_config, "rubix"
        )
        system = restore(snap)
        with pytest.raises(RuntimeError):
            system.start()
        system.run()  # completes without error


class TestSnapshotFormat:
    def _any_snapshot(self, small_config):
        traces = _traces(small_config, requests=100)
        system = SimulatedSystem(traces, MitigationSetup("none"),
                                 small_config, mapping="zen", seed=SEED)
        system.start()
        box = {}
        system.run(checkpoint_every=5000,
                   on_checkpoint=lambda s, b: box.setdefault(
                       "snap", capture(s, boundary=b)))
        return box["snap"]

    def test_save_load_round_trip(self, small_config, tmp_path):
        snap = self._any_snapshot(small_config)
        path = str(tmp_path / "s.ckpt.gz")
        digest = save_snapshot(snap, path)
        loaded = load_snapshot(path)
        assert loaded.meta == snap.meta
        assert loaded.payload == snap.payload
        assert snapshot_digest(loaded) == digest

    def test_snapshot_exposes_cycle_and_boundary(self, small_config):
        snap = self._any_snapshot(small_config)
        assert snap.boundary == 5000
        assert 0 < snap.cycle <= snap.boundary

    def test_wrong_version_rejected(self, small_config, tmp_path):
        snap = self._any_snapshot(small_config)
        bad = Snapshot(meta=snap.meta, payload=snap.payload,
                       version=snap.version + 1)
        path = str(tmp_path / "v.ckpt.gz")
        save_snapshot(bad, path)
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(path)

    def test_checkpoint_writer_manifest(self, small_config, tmp_path):
        directory = str(tmp_path / "ckpts")
        writer = CheckpointWriter(directory)
        snap = self._any_snapshot(small_config)
        path = writer.write(snap)
        assert os.path.exists(path)
        assert writer.latest() == path
        # A second writer picks the manifest back up.
        again = CheckpointWriter(directory)
        assert again.latest() == path
        loaded = load_latest(directory)
        assert loaded is not None and loaded.boundary == snap.boundary

    def test_simulate_checkpoint_dir_requires_every(self, small_config,
                                                    tmp_path):
        traces = _traces(small_config, requests=50)
        with pytest.raises(ValueError):
            simulate(traces, MitigationSetup("none"), small_config,
                     checkpoint_dir=str(tmp_path))
        with pytest.raises(ValueError):
            simulate(traces, MitigationSetup("none"), small_config,
                     checkpoint_every=1000)


class TestFork:
    def _warm_snapshot(self, small_config):
        setup = MitigationSetup(mechanism="autorfm", tracker="mint",
                                threshold=4, policy="fractal")
        traces = _traces(small_config)
        system = SimulatedSystem(traces, setup, small_config,
                                 mapping="rubix", seed=SEED)
        system.start()
        box = {}
        system.run(checkpoint_every=15000,
                   on_checkpoint=lambda s, b: box.setdefault(
                       "snap", capture(s, boundary=b)))
        return box["snap"]

    def test_same_fork_seed_is_deterministic(self, small_config):
        snap = self._warm_snapshot(small_config)
        a = fork(snap, seed=101).run()
        b = fork(snap, seed=101).run()
        assert _stats_json(a) == _stats_json(b)

    def test_fork_reseeds_mitigation_streams(self, small_config):
        snap = self._warm_snapshot(small_config)
        forked = fork(snap, seed=101)
        plain = restore(snap)
        names = [n for n in plain.controller._streams._streams
                 if n.startswith("tracker/")]
        assert names, "no tracker streams to compare"
        assert any(
            forked.controller._streams._streams[n].bit_generator.state
            != plain.controller._streams._streams[n].bit_generator.state
            for n in names
        )

    def test_profiler_records_capture_and_restore(self, small_config):
        setup = MitigationSetup(mechanism="autorfm", tracker="mint",
                                threshold=4)
        traces = _traces(small_config)
        obs = Observability(ObsConfig(metrics=True))
        system = SimulatedSystem(traces, setup, small_config,
                                 mapping="rubix", seed=SEED, obs=obs)
        system.start()
        box = {}
        system.run(checkpoint_every=15000,
                   on_checkpoint=lambda s, b: box.setdefault(
                       "snap", capture(s, boundary=b)))
        assert obs.profiler.counts.get("ckpt.capture", 0) >= 1
        assert "ckpt.capture" in obs.profiler.seconds
        restored = restore(box["snap"])
        assert restored.obs.profiler.counts.get("ckpt.restore") == 1
        # The deterministic metrics registry must NOT see checkpoint cost:
        # it has to stay bit-identical between straight and resumed runs.
        names = {name for name, _, _ in obs.metrics.series()}
        assert not any(n.startswith("ckpt") for n in names)
