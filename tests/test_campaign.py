"""Adaptive threshold-campaign engine: SPRT decision rule against exact
binomial arithmetic, bisection against exhaustive scans, the shared-pool
cell engine against the fixed-seed oracle, and kill/resume determinism.
"""

import json
import math
import os
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.runner import (
    ExperimentRunner,
    any_job_from_wire,
    campaign_job_from_wire,
    campaign_job_key,
    campaign_job_to_wire,
)
from repro.security.campaign import (
    SAFE,
    UNSAFE,
    CampaignJob,
    CellEngine,
    ChunkSchedule,
    SprtConfig,
    load_frontier,
    oracle_campaign_cell,
    run_campaign_cell,
    save_frontier,
    search_smallest_safe,
    sprt_probe,
    summarize_campaign,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ----------------------------------------------------------------------
# SPRT decision rule vs exact binomial arithmetic
# ----------------------------------------------------------------------
class TestSprtConfig:
    def test_llr_is_exact_binomial_likelihood_ratio(self):
        """The incremental llr must equal log(P(k; n, p1) / P(k; n, p0))
        computed from the binomial pmf — the C(n, k) factor cancels."""
        cfg = SprtConfig(alpha=0.01, beta=0.02, p0=0.05, p1=0.3)
        for n in range(1, 30):
            for k in range(n + 1):
                pmf1 = (
                    math.comb(n, k)
                    * cfg.p1 ** k * (1 - cfg.p1) ** (n - k)
                )
                pmf0 = (
                    math.comb(n, k)
                    * cfg.p0 ** k * (1 - cfg.p0) ** (n - k)
                )
                assert cfg.llr(k, n) == pytest.approx(
                    math.log(pmf1 / pmf0), rel=1e-12
                )

    def test_default_bounds(self):
        cfg = SprtConfig()
        assert cfg.upper_bound == pytest.approx(
            math.log((1 - 1e-3) / 1e-3)
        )
        assert cfg.lower_bound == pytest.approx(
            math.log(1e-3 / (1 - 1e-3))
        )

    def test_decide_matches_bounds(self):
        cfg = SprtConfig()
        # Pure break: each exceedance adds log(10) ~ 2.303, so the upper
        # bound (~6.9) is crossed at the 3rd exceedance.
        assert cfg.decide(2, 2) is None
        assert cfg.decide(3, 3) == UNSAFE
        # Pure survive: each survival adds log(0.9/0.99) ~ -0.0953, so
        # the lower bound needs ceil(6.9 / 0.0953) = 73 seeds.
        assert cfg.decide(0, 72) is None
        assert cfg.decide(0, 73) == SAFE

    def test_budget_verdict_is_midpoint_rule(self):
        cfg = SprtConfig(p0=0.1, p1=0.5)  # midpoint 0.3
        assert cfg.budget_verdict(29, 100) == SAFE
        assert cfg.budget_verdict(30, 100) == UNSAFE

    def test_validation(self):
        with pytest.raises(ValueError):
            SprtConfig(alpha=0.0)
        with pytest.raises(ValueError):
            SprtConfig(p0=0.5, p1=0.1)
        with pytest.raises(ValueError):
            SprtConfig(beta=0.7)

    def test_error_rates_within_wald_bounds(self):
        """Exact error probabilities of the truncated SPRT, by dynamic
        programming over the reachable (n, exceedances) states, stay
        within Wald's bounds plus the mass the truncation forces.

        Under H0 (p = p0) the probability of an UNSAFE verdict must be
        <= alpha / (1 - beta) + P(truncated); under H1 symmetrically.
        A loose config keeps the state space tiny and the truncated mass
        visible.
        """
        cfg = SprtConfig(alpha=0.05, beta=0.05, p0=0.1, p1=0.5)
        max_seeds = 60

        def error_rate(p: float, wrong_verdict: str) -> tuple:
            # mass[k] = P(undecided after n seeds with k exceedances)
            mass = {0: 1.0}
            wrong = truncated = 0.0
            for n in range(1, max_seeds + 1):
                nxt = {}
                for k, prob in mass.items():
                    for broke, step_p in ((True, p), (False, 1 - p)):
                        k2 = k + 1 if broke else k
                        verdict = cfg.decide(k2, n)
                        contribution = prob * step_p
                        if verdict is None:
                            nxt[k2] = nxt.get(k2, 0.0) + contribution
                        elif verdict == wrong_verdict:
                            wrong += contribution
                mass = nxt
            for k, prob in mass.items():
                truncated += prob
                if cfg.budget_verdict(k, max_seeds) == wrong_verdict:
                    wrong += prob
            return wrong, truncated

        false_unsafe, trunc0 = error_rate(cfg.p0, UNSAFE)
        false_safe, trunc1 = error_rate(cfg.p1, SAFE)
        assert false_unsafe <= cfg.alpha / (1 - cfg.beta) + trunc0
        assert false_safe <= cfg.beta / (1 - cfg.alpha) + trunc1
        # And the bounds are meaningful: the test would also pass with
        # everything truncated, so pin that most sequences decide.
        assert trunc0 < 0.25 and trunc1 < 0.25


class TestSprtProbe:
    def test_pure_break_stops_fast(self):
        result = sprt_probe([True] * 100, SprtConfig(), 100, threshold=7)
        assert result.verdict == UNSAFE
        assert result.decided_by == "sprt"
        assert result.seeds_used == 3
        assert result.threshold == 7

    def test_pure_survive_stops_at_73(self):
        result = sprt_probe([False] * 100, SprtConfig(), 100)
        assert result.verdict == SAFE
        assert result.seeds_used == 73

    def test_budget_fallback_matches_oracle_rule(self):
        cfg = SprtConfig(p0=0.1, p1=0.5)
        # Alternate just under the midpoint so no bound is ever crossed
        # ... construct an undecided walk: exceed once every 4 seeds sits
        # between the drifts for this config.
        exceed = [i % 4 == 0 for i in range(40)]
        result = sprt_probe(exceed, cfg, 40)
        if result.decided_by == "budget":
            k = sum(exceed)
            assert result.verdict == cfg.budget_verdict(k, 40)
            assert result.seeds_used == 40

    def test_undecided_short_sequence_raises(self):
        with pytest.raises(ValueError):
            sprt_probe([False] * 10, SprtConfig(), 100)

    def test_decision_depends_only_on_prefix(self):
        """Everything after the crossing is irrelevant — the invariant
        that makes chunked pool growth and resume exact."""
        cfg = SprtConfig()
        head = [True, True, True]
        for tail in ([], [False] * 50, [True] * 50):
            result = sprt_probe(head + tail, cfg, 200)
            assert (result.verdict, result.seeds_used) == (UNSAFE, 3)


# ----------------------------------------------------------------------
# Chunk schedule
# ----------------------------------------------------------------------
class TestChunkSchedule:
    def test_clamps(self):
        cfg = SprtConfig()
        schedule = ChunkSchedule(min_chunk=8, max_chunk=64)
        # At llr = 0 the nearest bound is ~73 survive-steps or 3
        # break-steps away: the minimum is 3, clamped up to 8.
        assert schedule.next_chunk(0.0, cfg) == 8
        # Just below the upper bound: 1 step could decide.
        assert schedule.next_chunk(cfg.upper_bound - 0.01, cfg) == 8
        # Unclamped, the drift distance itself comes through: at llr = 0
        # the break side needs ceil(6.9 / log(10)) = 3 steps.
        wide = ChunkSchedule(min_chunk=1, max_chunk=50)
        assert wide.next_chunk(0.0, cfg) == 3
        # With a narrow (p0, p1) gap the per-seed steps shrink and the
        # schedule grows chunks to match: log(0.5/0.4) per break means
        # ceil(6.9 / 0.223) = 31 seeds to the nearest bound.
        slow = SprtConfig(p0=0.4, p1=0.5)
        assert ChunkSchedule(1, 100).next_chunk(0.0, slow) == 31
        with pytest.raises(ValueError):
            ChunkSchedule(min_chunk=0)
        with pytest.raises(ValueError):
            ChunkSchedule(min_chunk=10, max_chunk=5)


# ----------------------------------------------------------------------
# Bisection vs exhaustive scan
# ----------------------------------------------------------------------
class TestSearchSmallestSafe:
    def probe_for(self, boundary):
        """Monotone probe: SAFE at thresholds >= boundary."""
        return lambda t: SAFE if t >= boundary else UNSAFE

    def test_exact_boundaries(self):
        for boundary in [1, 2, 3, 5, 17, 64, 65, 1000, 12345]:
            assert search_smallest_safe(self.probe_for(boundary)) == boundary

    def test_probe_count_is_logarithmic(self):
        calls = []
        boundary = 5000

        def probe(t):
            calls.append(t)
            return SAFE if t >= boundary else UNSAFE

        assert search_smallest_safe(probe) == boundary
        assert len(calls) < 2 * math.log2(boundary) + 4

    def test_no_safe_threshold_raises(self):
        with pytest.raises(RuntimeError):
            search_smallest_safe(lambda t: UNSAFE, cap=1 << 12)

    @given(st.lists(st.floats(min_value=0, max_value=200), min_size=1,
                    max_size=60),
           st.integers(min_value=2, max_value=100))
    @settings(max_examples=200, deadline=None)
    def test_bisection_equals_linear_scan_over_pools(self, pool, max_t):
        """Against arbitrary seed-pressure pools, the bisection finds
        exactly the threshold an exhaustive smallest-to-largest scan of
        the same budget-rule probe finds — the probe family is monotone
        in T by construction, which is the property bisection needs."""
        cfg = SprtConfig(p0=0.1, p1=0.5)

        def probe(t):
            k = sum(1 for p in pool if p >= t)
            return cfg.budget_verdict(k, len(pool))

        found = search_smallest_safe(probe)
        linear = next(t for t in range(1, max(found, max_t) + 2)
                      if probe(t) == SAFE)
        assert found == linear

    @given(st.lists(st.floats(min_value=0, max_value=60), min_size=4,
                    max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_sprt_probe_family_is_monotone(self, pool):
        """SAFE at T implies SAFE at every T' > T when every probe walks
        the same pool prefix — the exceedance indicators are pointwise
        non-increasing in T, so the llr path can only drop. This is the
        cell engine's licence to bisect over SPRT probes."""
        cfg = SprtConfig(alpha=0.05, beta=0.05, p0=0.1, p1=0.5)
        verdicts = [
            sprt_probe([p >= t for p in pool], cfg, len(pool), t).verdict
            for t in range(1, int(max(pool)) + 3)
        ]
        # Once SAFE, never UNSAFE again at a higher threshold.
        first_safe = verdicts.index(SAFE) if SAFE in verdicts else None
        if first_safe is not None:
            assert all(v == SAFE for v in verdicts[first_safe:])


# ----------------------------------------------------------------------
# Campaign jobs: validation, wire codec, cache keys
# ----------------------------------------------------------------------
class TestCampaignJob:
    def test_scenario_pins_version_and_digest(self):
        job = CampaignJob(scenario="row_press", acts=1000, max_seeds=40)
        assert job.scenario_version is not None
        assert len(job.scenario_digest) == 64

    def test_wrong_digest_rejected(self):
        job = CampaignJob(scenario="row_press", acts=1000, max_seeds=40)
        with pytest.raises(ValueError, match="digest"):
            CampaignJob(
                scenario="row_press", scenario_digest="0" * 64,
                acts=1000, max_seeds=40,
            )
        with pytest.raises(ValueError, match="version"):
            CampaignJob(
                scenario="row_press", scenario_version="9.9.9",
                acts=1000, max_seeds=40,
            )
        # and the real values round-trip
        CampaignJob(
            scenario="row_press",
            scenario_version=job.scenario_version,
            scenario_digest=job.scenario_digest,
            acts=1000, max_seeds=40,
        )

    def test_scenario_fields_require_scenario(self):
        with pytest.raises(ValueError):
            CampaignJob(scenario_digest="0" * 64)

    def test_bad_stat_contract_rejected_eagerly(self):
        with pytest.raises(ValueError):
            CampaignJob(p0=0.5, p1=0.1)
        with pytest.raises(ValueError):
            CampaignJob(min_chunk=0)
        with pytest.raises(ValueError):
            CampaignJob(tracker="nope")

    def test_wire_round_trip(self):
        for job in (
            CampaignJob(window=4, acts=1000, max_seeds=50),
            CampaignJob(scenario="abcd_k", acts=1000, max_seeds=50,
                        alpha=0.01, rubix_key=3),
        ):
            wire = campaign_job_to_wire(job)
            decoded = campaign_job_from_wire(
                json.loads(json.dumps(wire))
            )
            assert decoded == job
            assert any_job_from_wire(wire) == job
            assert campaign_job_key(decoded) == campaign_job_key(job)

    def test_wire_rejects_unknown_fields(self):
        wire = campaign_job_to_wire(CampaignJob(max_seeds=50))
        wire["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            campaign_job_from_wire(wire)

    def test_key_is_backend_blind(self):
        a = CampaignJob(window=4, max_seeds=50, backend="numpy")
        b = CampaignJob(window=4, max_seeds=50, backend="scalar")
        assert campaign_job_key(a) == campaign_job_key(b)

    def test_key_covers_statistical_contract(self):
        base = CampaignJob(window=4, max_seeds=50)
        assert campaign_job_key(base) != campaign_job_key(
            CampaignJob(window=4, max_seeds=50, alpha=0.01)
        )
        assert campaign_job_key(base) != campaign_job_key(
            CampaignJob(window=4, max_seeds=50, max_chunk=128)
        )
        assert campaign_job_key(base) != campaign_job_key(
            CampaignJob(window=4, max_seeds=60)
        )


# ----------------------------------------------------------------------
# The cell engine: differential vs the fixed-seed oracle
# ----------------------------------------------------------------------
#: Mini-campaign grid used by both the test differential and CI: chosen
#: to span trackers, policies, and corpus scenarios while keeping the
#: fixed-seed oracle affordable.
DIFFERENTIAL_CELLS = (
    dict(tracker="mint", policy="fractal", window=4, acts=1500,
         max_seeds=80),
    dict(tracker="mint", policy="blast", window=4, acts=1500,
         max_seeds=80),
    dict(tracker="para", policy="fractal", window=4, acts=1500,
         max_seeds=80),
    dict(tracker="graphene", policy="fractal", window=4, acts=1500,
         max_seeds=80),
    dict(scenario="row_press", acts=2000, max_seeds=120),
    dict(scenario="abcd_k", acts=2000, max_seeds=120),
)


class TestCellDifferential:
    @pytest.mark.parametrize("cell", DIFFERENTIAL_CELLS,
                             ids=lambda c: c.get("scenario")
                             or f"{c['tracker']}-{c['policy']}")
    def test_sprt_cell_matches_fixed_seed_oracle(self, cell):
        job = CampaignJob(**cell)
        adaptive = run_campaign_cell(job)
        oracle = oracle_campaign_cell(job)
        assert (
            adaptive["tolerated_threshold"]
            == oracle["tolerated_threshold"]
        )
        assert adaptive["seeds_saved_pct"] >= 80.0
        # The pool is shared, so the cell can never spend more than one
        # full budget regardless of probe count.
        assert adaptive["seeds_spent"] <= job.max_seeds

    def test_backend_parity(self):
        a = run_campaign_cell(
            CampaignJob(window=4, acts=1200, max_seeds=80, rubix_key=7)
        )
        b = run_campaign_cell(
            CampaignJob(window=4, acts=1200, max_seeds=80, rubix_key=7,
                        backend="scalar")
        )
        assert a == b

    def test_chunking_never_changes_the_answer(self):
        """Chunk-schedule bounds shape when the pool grows, never what
        any probe concludes — min_chunk=max_seeds evaluates the whole
        pool in one replay and must reproduce the adaptive result
        (modulo seeds_spent bookkeeping, which we normalize away)."""
        fine = CampaignJob(window=4, acts=1200, max_seeds=80)
        coarse = CampaignJob(window=4, acts=1200, max_seeds=80,
                             min_chunk=80, max_chunk=80)
        a, b = run_campaign_cell(fine), run_campaign_cell(coarse)
        assert a["tolerated_threshold"] == b["tolerated_threshold"]
        assert a["probes"] == b["probes"]

    def test_result_record_round_trips_json(self):
        record = run_campaign_cell(
            CampaignJob(window=4, acts=1200, max_seeds=80)
        )
        assert json.loads(json.dumps(record)) == record


class TestSummarize:
    def test_totals_and_metrics(self):
        from repro.obs import MetricsRegistry

        records = [
            run_campaign_cell(CampaignJob(window=4, acts=1200,
                                          max_seeds=80)),
        ]
        registry = MetricsRegistry()
        summary = summarize_campaign(records, metrics=registry)
        counters = registry.snapshot()["counters"]
        assert counters["campaign.cells"] == 1
        assert counters["campaign.probes"] == len(records[0]["probes"])
        assert counters["campaign.seeds_spent"] == summary["seeds_spent"]
        assert summary["seeds_saved_vs_fixed"] == (
            summary["fixed_cost_seeds"] - summary["seeds_spent"]
        )


# ----------------------------------------------------------------------
# Frontier persistence and resume
# ----------------------------------------------------------------------
class TestResume:
    def test_frontier_round_trip_is_exact(self, tmp_path):
        pool = [0.0, 3.5, 17.0, 2.0 ** -40, 123456.789]
        save_frontier(str(tmp_path), "k", pool)
        assert load_frontier(str(tmp_path), "k") == pool

    def test_missing_or_corrupt_frontier_is_none(self, tmp_path):
        assert load_frontier(str(tmp_path), "absent") is None
        (tmp_path / "bad.part.json").write_text("{not json")
        assert load_frontier(str(tmp_path), "bad") is None

    def test_resumed_cell_is_bit_identical(self, tmp_path):
        job = CampaignJob(window=4, acts=1200, max_seeds=100)
        baseline = run_campaign_cell(job)

        # Simulate a kill after the first pool extensions: persist a
        # 30-seed frontier, then run a fresh engine against it.
        seeding = CellEngine(job, cache_dir=str(tmp_path), key="cell")
        seeding.ensure_seeds(30)
        resumed_engine = CellEngine(job, cache_dir=str(tmp_path),
                                    key="cell")
        assert resumed_engine.pool == seeding.pool
        result = resumed_engine.run()
        assert result == baseline
        # The resumed engine replayed only the seeds past the frontier.
        assert resumed_engine.seeds_executed == len(
            resumed_engine.pool
        ) - 30
        # The scratch frontier is cleaned up after a completed cell.
        assert load_frontier(str(tmp_path), "cell") is None

    def test_sigkilled_campaign_resumes_to_identical_table(self, tmp_path):
        """Kill a campaign subprocess mid-cell, re-run it, and require
        the final record to be identical to an undisturbed run.

        Timing-robust by construction: whether the kill lands before the
        first pool extension, mid-bisection, or after completion, the
        re-run must converge to the same record (the frontier file and
        the result cache are both content-addressed by the job key).
        """
        cache_dir = str(tmp_path / "cache")
        script = (
            "import sys\n"
            "sys.path.insert(0, %r)\n"
            "from repro.analysis.runner import ExperimentRunner, CampaignJob\n"
            "job = CampaignJob(window=4, acts=2000, max_seeds=300,\n"
            "                  min_chunk=8, max_chunk=16)\n"
            "runner = ExperimentRunner(cache_dir=%r, jobs=1)\n"
            "record = runner.run_campaign(job)\n"
            "print(record['tolerated_threshold'])\n"
        ) % (os.path.join(REPO_ROOT, "src"), cache_dir)

        victim = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        )
        # Wait for evidence of progress (a frontier or a finished cell),
        # then SIGKILL. If the run already finished, the kill exercises
        # the trivial resume (pure cache hit) — still a valid case.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if os.path.isdir(cache_dir) and any(
                name.endswith(".json") for name in os.listdir(cache_dir)
            ):
                break
            if victim.poll() is not None:
                break
            time.sleep(0.02)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

        job = CampaignJob(window=4, acts=2000, max_seeds=300,
                          min_chunk=8, max_chunk=16)
        resumed = ExperimentRunner(cache_dir=cache_dir, jobs=1)
        resumed_record = resumed.run_campaign(job)
        pristine = ExperimentRunner(
            cache_dir=str(tmp_path / "fresh"), jobs=1
        ).run_campaign(job)
        assert resumed_record == pristine


# ----------------------------------------------------------------------
# Runner integration
# ----------------------------------------------------------------------
class TestRunnerIntegration:
    def test_dedup_cache_and_backend_twins(self, tmp_path):
        job = CampaignJob(window=4, acts=1200, max_seeds=80)
        twin = CampaignJob(window=4, acts=1200, max_seeds=80,
                           backend="scalar")
        runner = ExperimentRunner(cache_dir=str(tmp_path), jobs=1)
        first, second, third = runner.run_campaign_many([job, job, twin])
        assert first == second == third

        rerun = ExperimentRunner(cache_dir=str(tmp_path), jobs=1)
        assert rerun.run_campaign(job) == first
        assert rerun.cache.hits == 1 and rerun.cache.misses == 0

    def test_parallel_matches_serial(self, tmp_path):
        jobs = [
            CampaignJob(window=4, acts=1200, max_seeds=80),
            CampaignJob(window=4, acts=1200, max_seeds=80,
                        policy="blast"),
        ]
        serial = ExperimentRunner(
            cache_dir=str(tmp_path / "a"), jobs=1
        ).run_campaign_many(jobs)
        parallel = ExperimentRunner(
            cache_dir=str(tmp_path / "b"), jobs=2
        ).run_campaign_many(jobs)
        assert serial == parallel
