"""Tests for the Hydra hybrid tracker."""

import numpy as np
import pytest

from repro.trackers.hydra import HydraTracker


def make(group_size=128, group_th=20, row_th=40, rcc=8, seed=0):
    return HydraTracker(
        rng=np.random.default_rng(seed),
        group_size=group_size,
        group_threshold=group_th,
        row_threshold=row_th,
        rcc_entries=rcc,
    )


class TestHydraCommonCase:
    def test_benign_traffic_stays_in_sram(self):
        hydra = make(group_th=20)
        # Spread accesses: every group stays far below its threshold.
        for row in range(0, 10_000, 7):
            hydra.on_activation(row)
        assert hydra.dram_lookups == 0
        assert hydra.engaged_groups == 0
        assert hydra.select_for_mitigation() is None

    def test_group_counter_aggregates(self):
        hydra = make(group_size=128)
        for row in (0, 5, 127):
            hydra.on_activation(row)
        assert hydra.group_count(0) == 3
        assert hydra.group_count(128) == 0


class TestHydraEngagement:
    def test_hot_group_engages_row_tracking(self):
        hydra = make(group_th=10, row_th=1000)
        for _ in range(15):
            hydra.on_activation(42)
        assert hydra.engaged_groups == 1
        assert hydra.row_count(42) > 0

    def test_row_threshold_triggers_mitigation(self):
        hydra = make(group_th=5, row_th=10)
        for _ in range(20):
            hydra.on_activation(42)
        request = hydra.select_for_mitigation()
        assert request is not None and request.row == 42
        assert hydra.row_count(42) == 0  # reset after mitigation

    def test_dram_lookups_on_rcc_misses(self):
        hydra = make(group_th=1, row_th=10_000, rcc=2)
        # Three distinct hot rows with a 2-entry RCC: misses keep coming.
        for i in range(30):
            hydra.on_activation([10, 20, 30][i % 3])
        assert hydra.dram_lookups > 3

    def test_rcc_hits_avoid_dram(self):
        hydra = make(group_th=1, row_th=10_000, rcc=8)
        for _ in range(30):
            hydra.on_activation(10)
        assert hydra.dram_lookups == 1  # first touch only

    def test_attack_bounded_by_thresholds(self):
        hydra = make(group_th=8, row_th=16)
        worst_streak = streak = 0
        for _ in range(4000):
            hydra.on_activation(77)
            streak += 1
            if hydra.select_for_mitigation() is not None:
                worst_streak = max(worst_streak, streak)
                streak = 0
        assert worst_streak <= 8 + 16  # engage latency + row threshold


class TestHydraHousekeeping:
    def test_refresh_window_resets(self):
        hydra = make(group_th=2, row_th=4)
        for _ in range(6):
            hydra.on_activation(9)
        hydra.on_refresh_window()
        assert hydra.group_count(9) == 0
        assert hydra.row_count(9) == 0
        assert hydra.select_for_mitigation() is None

    def test_storage_is_sram_only(self):
        # A few KB of SRAM, far below per-row counters for 128K rows.
        assert make().storage_bits < 64 * 1024 * 8

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            make(group_size=0)
        with pytest.raises(ValueError):
            make(row_th=0)
