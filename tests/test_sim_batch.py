"""Batched timing backend: bit-identity with the scalar oracle.

The fused kernel in :mod:`repro.sim.batch` must be an *invisible*
optimisation: for every lane it either reproduces the scalar event loop's
results exactly or routes the lane to the scalar oracle itself. These
tests pin that contract from every direction — a differential matrix
across mechanisms x mappings x seeds, the mid-batch fallback path, the
ineligibility routing (observability, event budgets, checkpointing), the
``backend=`` plumbing through :func:`repro.cpu.system.simulate` and the
experiment runner (including cache-key blindness), and checkpoint/resume
of a run submitted through the batch entry point.

Every differential case crosses at least one refresh boundary (tREFI), so
the periodic REF machinery — where the kernel and the oracle are most
likely to drift — is always exercised.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import ExperimentRunner, Job
from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.sim.batch import SimLane, simulate_batch
from repro.sim.cmdlog import CommandLog
from repro.sim.config import SystemConfig
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces

REQUESTS = 400

#: mechanism x mapping matrix: an unmitigated run, the paper's headline
#: AutoRFM configuration, and PRAC (per-row counters + ABO alerts) — three
#: structurally different mitigation paths through the kernel.
MATRIX = [
    ("none", {}, "zen"),
    ("none", {}, "rubix"),
    ("autorfm", dict(threshold=4, tracker="mint", policy="fractal"), "zen"),
    ("autorfm", dict(threshold=4, tracker="mint", policy="fractal"), "rubix"),
    ("prac", dict(prac_trh_d=100), "zen"),
    ("prac", dict(prac_trh_d=100), "rubix"),
]

SEEDS = (1, 2, 5)


def _traces(config, seed, requests=REQUESTS):
    return make_rate_traces(
        WORKLOADS["bwaves"], config, requests=requests, seed=seed
    )


class TestDifferentialMatrix:
    @pytest.mark.parametrize("mech,kwargs,mapping", MATRIX)
    def test_batch_matches_scalar(self, mech, kwargs, mapping):
        config = SystemConfig()
        setup = MitigationSetup(mechanism=mech, **kwargs)
        for seed in SEEDS:
            traces = _traces(config, seed)
            log_scalar = CommandLog()
            ref = simulate(
                traces, setup=setup, config=config, mapping=mapping,
                seed=seed, command_log=log_scalar,
            )
            # Every case must actually cross a refresh boundary.
            assert ref.stats.cycles > config.timing.trefi
            log_batch = CommandLog()
            report = {}
            got = simulate_batch(
                [SimLane(traces, setup, config, mapping, seed,
                         command_log=log_batch)],
                report=report,
            )[0]
            assert report["lanes"][0]["path"] == "kernel"
            assert report["lanes"][0]["reason"] is None
            assert got.stats == ref.stats
            assert log_batch.records == log_scalar.records

    def test_scalar_backend_forces_oracle(self):
        config = SystemConfig()
        traces = _traces(config, 1)
        report = {}
        simulate_batch(
            [SimLane(traces, MitigationSetup("none"), config, "zen", 1)],
            backend="scalar",
            report=report,
        )
        assert report["lanes"][0] == {
            "path": "scalar", "reason": "scalar-backend", "events": None,
        }

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            simulate_batch([], backend="bogus")


class TestFallbackRouting:
    def test_midbatch_fallback_lane_rides_with_kernel_lanes(self):
        """One batch, mixed fates: a kernel lane completes on the fast
        path while an ``rfm`` lane abandons it mid-run (the kernel does
        not model RFM commands) and reruns on the oracle — with results
        identical to a direct scalar run, and the routing visible in the
        report."""
        config = SystemConfig()
        traces = _traces(config, 2)
        setups = [
            MitigationSetup("none"),
            MitigationSetup("rfm", threshold=4),
        ]
        report = {}
        results = simulate_batch(
            [SimLane(traces, s, config, "zen", 2) for s in setups],
            report=report,
        )
        assert [e["path"] for e in report["lanes"]] == ["kernel", "scalar"]
        assert report["lanes"][1]["reason"] == "rfm-command"
        for setup, got in zip(setups, results):
            ref = simulate(
                traces, setup=setup, config=config, mapping="zen", seed=2
            )
            assert got.stats == ref.stats

    def test_observability_lane_routes_scalar_with_outputs(self):
        from repro.obs import ObsConfig, Observability

        config = SystemConfig()
        traces = _traces(config, 1)
        obs = Observability(ObsConfig(metrics=True, trace=True))
        report = {}
        got = simulate_batch(
            [SimLane(traces, MitigationSetup("none"), config, "zen", 1,
                     obs=obs)],
            report=report,
        )[0]
        assert report["lanes"][0]["reason"] == "observability"
        assert got.obs is not None and got.obs.trace_events > 0

    def test_max_events_lane_routes_scalar(self):
        config = SystemConfig()
        traces = _traces(config, 1)
        report = {}
        got = simulate_batch(
            [SimLane(traces, MitigationSetup("none"), config, "zen", 1,
                     max_events=50_000_000)],
            report=report,
        )[0]
        assert report["lanes"][0]["reason"] == "max-events"
        ref = simulate(traces, config=config, mapping="zen", seed=1)
        assert got.stats == ref.stats


class TestSimulateBackendKnob:
    def test_simulate_backend_batch_is_bit_identical(self):
        config = SystemConfig()
        setup = MitigationSetup("autorfm", threshold=4, policy="fractal")
        traces = _traces(config, 3)
        ref = simulate(traces, setup, config, mapping="rubix", seed=3)
        got = simulate(
            traces, setup, config, mapping="rubix", seed=3, backend="batch"
        )
        assert got.stats == ref.stats

    def test_simulate_rejects_unknown_backend(self):
        config = SystemConfig()
        with pytest.raises(ValueError, match="unknown backend"):
            simulate(_traces(config, 1), config=config, backend="bogus")


class TestRunnerBackend:
    def test_job_backend_excluded_from_cache_key(self, tmp_path):
        runner = ExperimentRunner(
            config=SystemConfig(), jobs=1,
            cache_dir=str(tmp_path / "cache"), requests=REQUESTS,
        )
        scalar = Job("bwaves", seed=3)
        batch = Job("bwaves", seed=3, backend="batch")
        assert runner.key_for(scalar) == runner.key_for(batch)

    def test_job_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Job("bwaves", backend="bogus")

    def test_runner_batch_results_answer_scalar_jobs(self, tmp_path):
        """A result computed by the batch backend is cached under the
        backend-blind key, so the scalar twin is a cache hit — and equal."""
        setup = MitigationSetup("autorfm", threshold=4, policy="fractal")
        runner = ExperimentRunner(
            config=SystemConfig(), jobs=1,
            cache_dir=str(tmp_path / "cache"), requests=REQUESTS,
        )
        got = runner.run(Job("bwaves", setup, "rubix", seed=3,
                             backend="batch"))
        executed = runner.simulations_run
        ref = runner.run(Job("bwaves", setup, "rubix", seed=3))
        assert runner.simulations_run == executed  # cache answered
        assert got.stats == ref.stats


class TestBatchedCheckpointResume:
    def test_checkpointed_lane_snapshots_and_resumes(self, tmp_path):
        """A lane submitted through the batch entry point with checkpoint
        options routes to the scalar oracle (the kernel does not model
        snapshots), produces bit-identical results, leaves restorable
        snapshots behind, and a restore from the newest one resumes to
        the same final stats."""
        from repro.ckpt import load_latest, restore

        config = SystemConfig()
        setup = MitigationSetup("autorfm", threshold=4, policy="fractal")
        traces = _traces(config, 2)
        ref = simulate(
            traces, setup, config, mapping="rubix", seed=2
        )
        ckpt_dir = str(tmp_path / "snapshots")
        report = {}
        got = simulate_batch(
            [SimLane(traces, setup, config, "rubix", 2,
                     checkpoint_every=ref.stats.cycles // 3,
                     checkpoint_dir=ckpt_dir)],
            report=report,
        )[0]
        assert report["lanes"][0]["reason"] == "checkpoint"
        assert got.stats == ref.stats

        snapshot = load_latest(ckpt_dir)
        assert snapshot is not None
        resumed = restore(snapshot).run()
        assert resumed.stats == ref.stats
