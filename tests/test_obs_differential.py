"""Differential test: ``repro.obs`` metrics vs ``repro.sim.stats``.

The simulator now has two accounting paths — the classic ``SimStats``
dataclass counters and the observability metrics registry. They are
written at the same hook points but through different code; this test
pins them to each other exactly (per bank, not just in aggregate) on a
fixed-seed AutoRFM-4 run and a blocking-RFM run, so the two paths can
never silently diverge.
"""

from __future__ import annotations

import pytest

from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.obs import ObsConfig, Observability
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces

REQUESTS = 400
SEED = 1


def observed_run(small_config, setup, mapping):
    traces = make_rate_traces(
        WORKLOADS["bwaves"], small_config, requests=REQUESTS, seed=SEED
    )
    obs = Observability(ObsConfig(metrics=True, trace=True))
    result = simulate(
        traces, setup, small_config, mapping=mapping, seed=SEED, obs=obs
    )
    return result, result.obs.metrics


def counters_named(snapshot, name):
    """``{series: value}`` for every labelled child of counter ``name``."""
    prefix = f"{name}{{"
    return {
        series: value
        for series, value in snapshot["counters"].items()
        if series == name or series.startswith(prefix)
    }


SETUPS = [
    pytest.param(
        MitigationSetup("autorfm", threshold=4, policy="fractal"),
        "rubix",
        id="autorfm-4",
    ),
    pytest.param(
        MitigationSetup("rfm", threshold=8),
        "zen",
        id="blocking-rfm-8",
    ),
]


class TestMetricsMatchStats:
    @pytest.mark.parametrize("setup,mapping", SETUPS)
    def test_per_bank_act_alert_rfm_ref_counters_match(
        self, small_config, setup, mapping
    ):
        result, snapshot = observed_run(small_config, setup, mapping)
        per_bank = {
            "mc.act": lambda b: b.activations,
            "mc.alert": lambda b: b.alerts,
            "mc.rfm": lambda b: b.rfm_commands,
            "mc.ref": lambda b: b.refreshes,
        }
        for name, field in per_bank.items():
            series = counters_named(snapshot, name)
            for flat, bank_stats in enumerate(result.stats.banks):
                observed = series.get(f"{name}{{bank={flat}}}", 0)
                assert observed == field(bank_stats), (
                    f"{name} diverged from SimStats on bank {flat}"
                )

    @pytest.mark.parametrize("setup,mapping", SETUPS)
    def test_aggregate_totals_match(self, small_config, setup, mapping):
        result, snapshot = observed_run(small_config, setup, mapping)
        totals = {
            "mc.act": result.stats.total_activations,
            "mc.alert": result.stats.total_alerts,
            "mc.rfm": result.stats.total_rfm_commands,
            "mc.ref": result.stats.total_refreshes,
            "core.mitigations": result.stats.total_mitigations,
            "core.victim_refreshes": result.stats.total_victim_refreshes,
        }
        for name, expected in totals.items():
            assert sum(counters_named(snapshot, name).values()) == expected, (
                f"sum over {name} series diverged from SimStats"
            )

    def test_rfm_layer_agrees_with_mc_layer(self, small_config):
        """The RfmController's own counter and the MC's per-bank RFM
        counters are written by different layers; they must agree."""
        setup = MitigationSetup("rfm", threshold=8)
        result, snapshot = observed_run(small_config, setup, "zen")
        rfm_issued = snapshot["counters"].get("rfm.issued", 0)
        assert rfm_issued == result.stats.total_rfm_commands
        assert rfm_issued == sum(
            counters_named(snapshot, "mc.rfm").values()
        )

    def test_trace_event_counts_match_counters(self, small_config):
        """The tracer and the metrics registry observe the same stream:
        per-kind trace event counts equal the counter totals."""
        import json

        setup = MitigationSetup("autorfm", threshold=4, policy="fractal")
        result, snapshot = observed_run(small_config, setup, "rubix")
        assert result.obs.trace_dropped == 0, (
            "trace overflowed; grow capacity so the comparison is exact"
        )
        kinds = {}
        for line in result.obs.trace_jsonl.splitlines():
            kind = json.loads(line)["kind"]
            kinds[kind] = kinds.get(kind, 0) + 1
        assert kinds.get("ACT", 0) == result.stats.total_activations
        assert kinds.get("ALERT", 0) == result.stats.total_alerts
        assert kinds.get("SAUM", 0) == result.stats.total_mitigations

    def test_engine_event_accounting_matches(self, small_config):
        """engine.events counts exactly the events the heap drained."""
        setup = MitigationSetup("autorfm", threshold=4, policy="fractal")
        result, snapshot = observed_run(small_config, setup, "rubix")
        assert snapshot["counters"]["engine.events"] > 0
        # The engine keeps draining maintenance events (tail refreshes)
        # after the last core retires, so its final cycle can only be at
        # or past the workload finish cycle SimStats reports.
        assert snapshot["gauges"]["engine.cycles"] >= result.stats.cycles
