"""Overhead regression guard: disabled observability must stay free.

The instrumentation added for ``repro.obs`` follows the pre-resolved
hook-object pattern — a single ``is None`` branch per event when disabled —
and the engine picks its observed twin loop once per drain, leaving the
tight loop untouched. This test holds that design to its number: the
disabled path's events/sec on the perf smoke must stay within the 2%
budget of the committed ``BENCH_perf.json`` baseline.

Timing tests are inherently machine-sensitive, so this one:

* is skippable wholesale via ``REPRO_SKIP_PERF_TESTS=1`` (set in CI, where
  shared runners make wall-clock comparisons meaningless);
* skips (rather than fails) when there is no committed baseline to
  compare against;
* uses min-of-N repeats and one full retry round before declaring a
  regression, so a scheduler hiccup cannot fail the suite.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

from bench_perf_smoke import OUTPUT, time_simulation  # noqa: E402

OVERHEAD_BUDGET = 0.02  # disabled-path slowdown allowed vs the baseline
RETRY_ROUNDS = 4  # measure up to this many times; pass if any round passes

skip_perf = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_TESTS", "") == "1",
    reason="perf tests disabled via REPRO_SKIP_PERF_TESTS=1",
)


def baseline_events_per_second():
    """The committed throughput baseline, or None when absent."""
    if not os.path.exists(OUTPUT):
        return None
    with open(OUTPUT) as f:
        return json.load(f).get("events_per_second")


@skip_perf
def test_disabled_obs_within_overhead_budget():
    baseline = baseline_events_per_second()
    if baseline is None:
        pytest.skip("no BENCH_perf.json baseline committed yet")
    floor = baseline * (1.0 - OVERHEAD_BUDGET)
    measured = None
    for _ in range(RETRY_ROUNDS):
        wall, events, _ = time_simulation(repeats=3, observed=False)
        measured = events / wall
        if measured >= floor:
            break
    assert measured >= floor, (
        f"disabled-observability path regressed: {measured:.0f} events/s "
        f"vs baseline {baseline:.0f} (budget {OVERHEAD_BUDGET:.0%})"
    )


@skip_perf
def test_enabled_obs_is_not_pathological():
    """Full metrics+trace collection is allowed to cost something, but a
    blow-up (>3x slowdown) means a hook landed on the wrong path."""
    wall, events, _ = time_simulation(repeats=2, observed=False)
    obs_wall, obs_events, result = time_simulation(repeats=2, observed=True)
    assert obs_events == events  # observation never changes the simulation
    assert result.obs is not None and result.obs.metrics is not None
    assert obs_wall < wall * 3.0, (
        f"observed run took {obs_wall:.3f}s vs {wall:.3f}s disabled"
    )
