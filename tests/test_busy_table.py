"""Tests for the MC busy-bit + timestamp table (Fig. 7)."""

from repro.mc.busy_table import BankBusyTable


class TestBankBusyTable:
    def test_initially_free(self):
        table = BankBusyTable(4)
        assert not table.is_busy(0, now=0)

    def test_mark_and_expire(self):
        table = BankBusyTable(4)
        table.mark_busy(2, until=100)
        assert table.is_busy(2, now=99)
        assert not table.is_busy(2, now=100)  # timestamp passed -> free

    def test_other_banks_unaffected(self):
        table = BankBusyTable(4)
        table.mark_busy(2, until=100)
        assert not table.is_busy(1, now=50)

    def test_mark_only_extends(self):
        table = BankBusyTable(2)
        table.mark_busy(0, until=100)
        table.mark_busy(0, until=50)
        assert table.busy_until(0) == 100

    def test_storage_is_two_bytes_per_bank(self):
        # Section VI-C: 64 banks -> 128 bytes of MC SRAM.
        assert BankBusyTable(64).storage_bytes == 128
        assert BankBusyTable(8).storage_bytes == 16
