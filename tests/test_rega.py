"""Tests for the REGA scaling model."""

import pytest

from repro.security.rega import (
    rega_k_for_trhd,
    rega_tolerated_trhd,
    rega_trc_factor,
)


class TestRegaModel:
    def test_v1_protects_hundreds(self):
        # One refresh per ACT over 512-row subarrays: TRH-D ~256.
        assert rega_tolerated_trhd(1) == 512
        assert rega_tolerated_trhd(2) == 256

    def test_threshold_scales_inversely_with_k(self):
        assert rega_tolerated_trhd(4) == rega_tolerated_trhd(2) // 2

    def test_trc_factor_base_case(self):
        assert rega_trc_factor(1) == 1.0
        assert rega_trc_factor(2) == pytest.approx(1.33)

    def test_k_for_trhd_round_trip(self):
        k = rega_k_for_trhd(100)
        assert rega_tolerated_trhd(k) <= 100
        assert rega_tolerated_trhd(k - 1) > 100

    def test_sub_100_is_unaffordable(self):
        """The paper's dismissal (Section VII-D): REGA at sub-100 TRH-D
        needs enough refreshes per ACT that tRC grows beyond even PRAC's
        +10 % by an order of magnitude."""
        k = rega_k_for_trhd(74)
        assert k >= 6
        assert rega_trc_factor(k) > 2.0  # > +100 % tRC

    def test_near_term_thresholds_are_fine(self):
        # At TRH-D ~500, REGA-V1/V2 is cheap — consistent with its paper.
        assert rega_k_for_trhd(512) == 1
        assert rega_trc_factor(1) == 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            rega_tolerated_trhd(0)
        with pytest.raises(ValueError):
            rega_trc_factor(0)
        with pytest.raises(ValueError):
            rega_k_for_trhd(0)

    def test_unreachable_target(self):
        with pytest.raises(ValueError):
            rega_k_for_trhd(1, rows_per_subarray=4)
