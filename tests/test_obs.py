"""Property tests for the observability layer (``repro.obs``).

Seeded-random, stdlib-only property tests (no Hypothesis dependency in the
tier-1 path) covering the algebraic contracts the rest of the system leans
on: histogram merge is associative and commutative, counters are
non-negative and label-separated, and the tracer's ring buffer evicts
oldest-first while preserving emission order.
"""

from __future__ import annotations

import io
import json
import random

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    ObsConfig,
    Observability,
    SpanTracer,
    merge_histograms,
)

EDGES = (1, 2, 4, 8, 16, 32)


def random_histogram(rng: random.Random, samples: int) -> Histogram:
    hist = Histogram(EDGES)
    for _ in range(samples):
        hist.observe(rng.randint(0, 64))
    return hist


class TestHistogramProperties:
    def test_merge_is_commutative(self):
        rng = random.Random(0xC0FFEE)
        for _ in range(50):
            a = random_histogram(rng, rng.randint(0, 40))
            b = random_histogram(rng, rng.randint(0, 40))
            assert merge_histograms(a, b) == merge_histograms(b, a)

    def test_merge_is_associative(self):
        rng = random.Random(0xBEEF)
        for _ in range(50):
            a = random_histogram(rng, rng.randint(0, 30))
            b = random_histogram(rng, rng.randint(0, 30))
            c = random_histogram(rng, rng.randint(0, 30))
            left = merge_histograms(merge_histograms(a, b), c)
            right = merge_histograms(a, merge_histograms(b, c))
            assert left == right

    def test_merge_identity_is_the_empty_histogram(self):
        rng = random.Random(7)
        for _ in range(20):
            a = random_histogram(rng, rng.randint(0, 30))
            assert merge_histograms(a, Histogram(EDGES)) == a

    def test_merge_conserves_count_and_sum(self):
        rng = random.Random(11)
        for _ in range(50):
            a = random_histogram(rng, rng.randint(0, 40))
            b = random_histogram(rng, rng.randint(0, 40))
            merged = merge_histograms(a, b)
            assert merged.count == a.count + b.count
            assert merged.sum == a.sum + b.sum
            assert sum(merged.counts) == merged.count

    def test_every_observation_lands_in_exactly_one_bucket(self):
        rng = random.Random(13)
        hist = Histogram(EDGES)
        for _ in range(500):
            value = rng.randint(-2, 64)
            before = sum(hist.counts)
            hist.observe(value)
            assert sum(hist.counts) == before + 1
        # Bucket boundaries: counts[i] holds values <= edges[i].
        boundary = Histogram(EDGES)
        for edge in EDGES:
            boundary.observe(edge)
        assert boundary.counts[: len(EDGES)] == [1] * len(EDGES)
        assert boundary.counts[-1] == 0

    def test_merge_rejects_mismatched_edges(self):
        with pytest.raises(ValueError, match="edges"):
            merge_histograms(Histogram((1, 2)), Histogram((1, 3)))

    def test_unsorted_or_duplicate_edges_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram((4, 2, 1))
        with pytest.raises(ValueError, match="distinct"):
            Histogram((1, 1, 2))


class TestCounterProperties:
    def test_counters_never_go_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        rng = random.Random(17)
        total = 0
        for _ in range(200):
            n = rng.randint(0, 10)
            counter.inc(n)
            total += n
            assert counter.value == total >= 0
        with pytest.raises(ValueError, match="count up"):
            counter.inc(-1)
        assert counter.value == total  # the rejected inc left no trace

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        rng = random.Random(19)
        expected = {}
        for _ in range(200):
            bank = rng.randint(0, 7)
            n = rng.randint(0, 5)
            registry.counter("mc.act", bank=bank).inc(n)
            expected[bank] = expected.get(bank, 0) + n
        for bank, total in expected.items():
            assert registry.counter("mc.act", bank=bank).value == total
        assert registry.sum_counters("mc.act") == sum(expected.values())

    def test_same_series_is_the_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x", bank=1) is registry.counter("x", bank=1)
        assert registry.counter("x", bank=1) is not registry.counter(
            "x", bank=2
        )
        # Label order never matters.
        a = registry.counter("y", bank=1, subchannel=0)
        b = registry.counter("y", subchannel=0, bank=1)
        assert a is b

    def test_type_conflicts_raise_instead_of_shadowing(self):
        registry = MetricsRegistry()
        registry.counter("mixed")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("mixed")
        registry.histogram("hist", (1, 2))
        with pytest.raises(ValueError, match="edges"):
            registry.histogram("hist", (1, 3))


class TestRegistryMerge:
    def test_registry_merge_is_label_aware_and_commutative(self):
        rng = random.Random(23)

        def shard(seed):
            reg = MetricsRegistry()
            local = random.Random(seed)
            for _ in range(100):
                reg.counter("acts", bank=local.randint(0, 3)).inc(
                    local.randint(0, 4)
                )
                reg.histogram("wait", EDGES).observe(local.randint(0, 40))
            return reg

        ab = shard(1)
        ab.merge(shard(2))
        ba = shard(2)
        ba.merge(shard(1))
        assert ab.snapshot() == ba.snapshot()

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("c", bank=0).inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h", EDGES).observe(5)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot, sort_keys=True)) == snapshot
        assert snapshot["counters"] == {"c{bank=0}": 3}
        assert snapshot["gauges"] == {"g": 7}


class TestTracerRingBuffer:
    def test_eviction_keeps_newest_and_preserves_order(self):
        rng = random.Random(29)
        for _ in range(25):
            capacity = rng.randint(1, 50)
            emitted = rng.randint(0, 120)
            tracer = SpanTracer(capacity=capacity)
            for i in range(emitted):
                tracer.event(i * 3, "ACT", seq=i)
            kept = tracer.events()
            assert len(kept) == min(capacity, emitted)
            assert tracer.emitted == emitted
            assert tracer.dropped == max(0, emitted - capacity)
            # The retained window is exactly the newest events, in order.
            sequence = [e["seq"] for e in kept]
            assert sequence == list(range(max(0, emitted - capacity), emitted))
            times = [e["t"] for e in kept]
            assert times == sorted(times)

    def test_jsonl_lines_are_canonical_and_ordered(self):
        tracer = SpanTracer(capacity=8)
        tracer.event(5, "ACT", bank=1, row=42)
        tracer.span(6, 10, "SAUM", bank=1, region=3)
        lines = tracer.to_jsonl().splitlines()
        assert lines[0] == '{"bank":1,"kind":"ACT","row":42,"t":5}'
        assert lines[1] == '{"bank":1,"end":10,"kind":"SAUM","region":3,"t":6}'
        parsed = [json.loads(line) for line in lines]
        assert [p["t"] for p in parsed] == [5, 6]

    def test_streaming_flush_sees_evicted_events_too(self):
        stream = io.StringIO()
        tracer = SpanTracer(capacity=2, stream=stream)
        for i in range(5):
            tracer.event(i, "ACT", seq=i)
        streamed = stream.getvalue().splitlines()
        assert len(streamed) == 5  # the stream got everything...
        assert len(tracer.events()) == 2  # ...while memory stayed bounded
        assert [json.loads(s)["seq"] for s in streamed] == list(range(5))

    def test_backwards_span_rejected(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError, match="before"):
            tracer.span(10, 5, "SAUM")


class TestDeterminismQuarantine:
    def test_metrics_and_trace_never_read_the_wall_clock(self):
        """The deterministic modules must not even import ``time``; the
        profiler is the single sanctioned wall-clock reader."""
        import repro.obs.metrics as metrics_mod
        import repro.obs.trace as trace_mod
        import inspect

        for module in (metrics_mod, trace_mod):
            source = inspect.getsource(module)
            assert "import time" not in source, module.__name__
            assert "perf_counter" not in source, module.__name__

    def test_disabled_observability_collects_nothing(self):
        obs = Observability(ObsConfig(metrics=False, trace=False))
        assert not obs.enabled
        assert obs.metrics is None and obs.tracer is None
        result = obs.result()
        assert result.metrics is None
        assert result.trace_jsonl is None

    def test_invalid_trace_capacity_rejected(self):
        with pytest.raises(ValueError, match="trace_capacity"):
            ObsConfig(trace_capacity=0)
