"""Tests for the blocking-RFM controller (RAA accounting) and PRAC+ABO."""

import pytest

from repro.rfm.prac import (
    ABO_SLACK_ACTS,
    PRAC_TRC_FACTOR,
    PracModel,
    abo_threshold_for,
    prac_timing,
)
from repro.rfm.rfm import RfmController
from repro.sim.config import DramTiming


class TestRfmController:
    def test_raa_counts_activations(self):
        rfm = RfmController(num_banks=2, rfm_th=4)
        for _ in range(3):
            rfm.on_activation(0)
        assert rfm.raa == [3, 0]

    def test_due_at_threshold(self):
        rfm = RfmController(num_banks=1, rfm_th=4)
        for _ in range(4):
            assert not rfm.rfm_due(0) or rfm.raa[0] >= 4
            rfm.on_activation(0)
        assert rfm.rfm_due(0)

    def test_hard_cap_above_due(self):
        rfm = RfmController(num_banks=1, rfm_th=4, max_factor=1.5)
        for _ in range(4):
            rfm.on_activation(0)
        assert rfm.rfm_due(0)
        assert not rfm.rfm_needed(0)  # RAAMMT = 6
        rfm.on_activation(0)
        rfm.on_activation(0)
        assert rfm.rfm_needed(0)

    def test_rfm_decrements_by_threshold(self):
        rfm = RfmController(num_banks=1, rfm_th=4)
        for _ in range(5):
            rfm.on_activation(0)
        rfm.on_rfm(0)
        assert rfm.raa[0] == 1
        assert rfm.rfms_issued == 1

    def test_rfm_floors_at_zero(self):
        rfm = RfmController(num_banks=1, rfm_th=4)
        rfm.on_activation(0)
        rfm.on_rfm(0)
        assert rfm.raa[0] == 0

    def test_refresh_decrements(self):
        rfm = RfmController(num_banks=1, rfm_th=4)
        for _ in range(6):
            rfm.on_activation(0)
        rfm.on_refresh(0)
        assert rfm.raa[0] == 2

    def test_custom_ref_decrement(self):
        rfm = RfmController(num_banks=1, rfm_th=4, ref_decrement=2)
        for _ in range(4):
            rfm.on_activation(0)
        rfm.on_refresh(0)
        assert rfm.raa[0] == 2

    def test_banks_are_independent(self):
        rfm = RfmController(num_banks=3, rfm_th=2)
        rfm.on_activation(1)
        rfm.on_activation(1)
        assert rfm.rfm_due(1)
        assert not rfm.rfm_due(0)
        assert not rfm.rfm_due(2)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RfmController(num_banks=1, rfm_th=0)
        with pytest.raises(ValueError):
            RfmController(num_banks=1, rfm_th=4, max_factor=0.5)


class TestPracTiming:
    def test_trc_scaled_ten_percent(self):
        timing = prac_timing(DramTiming())
        assert timing.trc_ns == pytest.approx(48.0 * PRAC_TRC_FACTOR)

    def test_other_timings_unchanged(self):
        timing = prac_timing(DramTiming())
        assert timing.trefi_ns == 3900.0
        assert timing.trfm_ns == 205.0


class TestAboThreshold:
    def test_leaves_slack(self):
        assert abo_threshold_for(100) == 100 - ABO_SLACK_ACTS

    def test_rejects_untenable_threshold(self):
        # Section VII-A: PRAC+ABO is viable only above ~50.
        with pytest.raises(ValueError):
            abo_threshold_for(ABO_SLACK_ACTS)


class TestPracModel:
    def test_alert_fires_at_threshold(self):
        prac = PracModel(num_banks=1, abo_threshold=3)
        assert not prac.on_activation(0, row=7)
        assert not prac.on_activation(0, row=7)
        assert prac.on_activation(0, row=7)
        assert prac.alerts == 1

    def test_alert_resets_row_counter(self):
        prac = PracModel(num_banks=1, abo_threshold=2)
        prac.on_activation(0, 7)
        prac.on_activation(0, 7)  # alert
        assert prac.row_count(0, 7) == 0

    def test_rows_counted_independently(self):
        prac = PracModel(num_banks=1, abo_threshold=10)
        prac.on_activation(0, 1)
        prac.on_activation(0, 2)
        assert prac.row_count(0, 1) == 1
        assert prac.row_count(0, 2) == 1

    def test_banks_counted_independently(self):
        prac = PracModel(num_banks=2, abo_threshold=10)
        prac.on_activation(0, 5)
        assert prac.row_count(1, 5) == 0

    def test_refresh_window_clears(self):
        prac = PracModel(num_banks=1, abo_threshold=10)
        prac.on_activation(0, 5)
        prac.on_refresh_window()
        assert prac.row_count(0, 5) == 0

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            PracModel(num_banks=1, abo_threshold=0)
