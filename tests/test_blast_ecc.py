"""Tests for the blast-radius model and the ECC tolerance model."""

import pytest

from repro.core.mitigation import FractalMitigation
from repro.security.blast import (
    DISTANCE_2_FRACTION,
    effective_pressure,
    fm_budget_ratio,
    max_protected_distance,
    relative_damage,
)
from repro.security.ecc import (
    SecdedCode,
    flip_probability,
    uncorrectable_rate_per_gb,
)


class TestBlastRadius:
    def test_d1_is_reference(self):
        assert relative_damage(1) == 1.0

    def test_d2_matches_blaster(self):
        # Footnote 3: < 10 % charge loss at d = 2.
        assert relative_damage(2) == DISTANCE_2_FRACTION

    def test_decay_is_monotone(self):
        damages = [relative_damage(d) for d in range(1, 8)]
        assert all(a > b for a, b in zip(damages, damages[1:]))

    def test_effective_pressure(self):
        assert effective_pressure(1000, 2) == pytest.approx(100.0)
        assert effective_pressure(1000, 1) == 1000.0

    def test_fm_budget_never_below_damage_share(self):
        """FM's 2^(1-d) refresh schedule decays slower than the 10x-per-hop
        damage decay, so protection margin grows with distance."""
        ratios = [fm_budget_ratio(d) for d in range(1, 10)]
        assert all(r >= 1.0 for r in ratios)
        assert all(a <= b for a, b in zip(ratios, ratios[1:]))

    def test_max_protected_distance(self):
        assert max_protected_distance() == FractalMitigation.RAND_BITS + 2

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            relative_damage(0)
        with pytest.raises(ValueError):
            relative_damage(2, d2_fraction=1.5)
        with pytest.raises(ValueError):
            effective_pressure(-1, 2)


class TestSecded:
    def test_word_geometry(self):
        code = SecdedCode()
        assert code.word_bits == 72

    def test_no_flips_no_failures(self):
        code = SecdedCode()
        assert code.p_correctable(0.0) == 0.0
        assert code.p_uncorrectable(0.0) == 0.0

    def test_single_flips_dominate_at_low_p(self):
        code = SecdedCode()
        p = 1e-6
        assert code.p_correctable(p) > 100 * code.p_uncorrectable(p)

    def test_uncorrectable_grows_quadratically(self):
        code = SecdedCode()
        low = code.p_uncorrectable(1e-6)
        high = code.p_uncorrectable(1e-5)
        assert high / low == pytest.approx(100, rel=0.05)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            SecdedCode().p_uncorrectable(1.5)


class TestEccCliff:
    def test_flip_probability_rises_through_threshold(self):
        below = flip_probability(pressure=500, trh=1000)
        at = flip_probability(pressure=1000, trh=1000)
        above = flip_probability(pressure=2000, trh=1000)
        assert below < at < above
        assert at == pytest.approx(0.5e-5, rel=0.01)

    def test_zero_pressure_never_flips(self):
        assert flip_probability(0, 1000) == 0.0

    def test_uncorrectable_failures_remain(self):
        """The paper's criticism quantified: past the threshold, ECC leaves
        a macroscopic uncorrectable rate — data loss, not prevention."""
        rate = uncorrectable_rate_per_gb(pressure=4000, trh=1000)
        assert rate > 1.0  # more than one lost word per hammered GB

    def test_prevention_regime_is_clean(self):
        """Below the threshold that a mitigation enforces, failures are
        negligible — prevention composes with ECC, replacement does not."""
        rate = uncorrectable_rate_per_gb(pressure=70, trh=1000)
        assert rate < 1e-6

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            flip_probability(-1, 100)
        with pytest.raises(ValueError):
            flip_probability(1, 100, spread=0)
