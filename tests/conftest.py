"""Shared fixtures: a small, fast system configuration for simulation tests."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.sim.config import SystemConfig
from repro.sim.rng import RngStreams


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    """Point the persistent experiment cache at a per-session tmp dir.

    Tests must neither read stale entries from nor pollute the repo's
    ``benchmarks/results/.cache`` directory.
    """
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield


@pytest.fixture
def small_config() -> SystemConfig:
    """A scaled-down geometry that keeps simulation tests fast.

    2 cores, 2 subchannels x 4 banks, 4 K rows per bank in 16 subarrays
    (256 rows each), 64-line rows — all the structural relations of the
    full Table IV config at 1/64 the size.
    """
    return SystemConfig(
        num_cores=2,
        num_subchannels=2,
        banks_per_subchannel=4,
        rows_per_bank=4096,
        subarrays_per_bank=16,
        llc_size_bytes=64 * 1024,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def streams() -> RngStreams:
    return RngStreams(seed=99)
