"""Integration tests for the memory controller's scheduling paths."""

from repro.mc.controller import MemoryController
from repro.mc.request import Request
from repro.mc.setup import MitigationSetup
from repro.mapping import ZenMapping
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.sim.stats import SimStats


def make_mc(small_config, setup=None, keep_running_until=None):
    engine = Engine()
    stats = SimStats.with_shape(small_config.num_banks, small_config.num_cores)
    running = [True]
    mc = MemoryController(
        config=small_config,
        mapping=ZenMapping(small_config),
        engine=engine,
        setup=setup or MitigationSetup("none"),
        streams=RngStreams(0),
        stats=stats,
        keep_running=lambda: running[0],
    )
    return engine, mc, stats, running


def submit_read(engine, mc, line, done):
    request = Request(
        core_id=0,
        line_addr=line,
        is_write=False,
        arrival=engine.now,
        on_complete=lambda t: done.append((line, t)),
    )
    mc.submit(request)
    return request


class TestBasicService:
    def test_read_completes(self, small_config):
        engine, mc, stats, running = make_mc(small_config)
        done = []
        engine.schedule(0, lambda t: submit_read(engine, mc, 0, done))
        running[0] = False
        engine.run()
        assert len(done) == 1
        assert done[0][1] > 0
        assert stats.total_activations == 1

    def test_pair_line_is_a_row_hit(self, small_config):
        engine, mc, stats, running = make_mc(small_config)
        done = []

        def go(t):
            submit_read(engine, mc, 0, done)
            submit_read(engine, mc, 1, done)  # pair mate: same bank row

        engine.schedule(0, go)
        running[0] = False
        engine.run()
        assert stats.total_activations == 1
        assert stats.total_row_hits == 1

    def test_conflicting_rows_serialize_on_trc(self, small_config):
        engine, mc, stats, running = make_mc(small_config)
        done = []
        # Same bank, different rows: +8 KB sibling pages share bank+row, so
        # use a large stride that changes the row (page group).
        far = 64 * small_config.lines_per_row  # 64 pages -> next row group
        zen = ZenMapping(small_config)
        a, b = 0, far
        assert zen.locate(a).flat_bank(4) == zen.locate(b).flat_bank(4)
        assert zen.locate(a).row != zen.locate(b).row

        def go(t):
            submit_read(engine, mc, a, done)
            submit_read(engine, mc, b, done)

        engine.schedule(0, go)
        running[0] = False
        engine.run()
        assert stats.total_activations == 2
        # Second ACT waited at least tRC.
        assert done[1][1] - done[0][1] >= small_config.timing.trc - 1

    def test_different_banks_overlap(self, small_config):
        engine, mc, stats, running = make_mc(small_config)
        done = []

        def go(t):
            submit_read(engine, mc, 0, done)  # bank 0
            submit_read(engine, mc, 2, done)  # bank 1

        engine.schedule(0, go)
        running[0] = False
        engine.run()
        spread = abs(done[1][1] - done[0][1])
        assert spread < small_config.timing.trc  # not serialized

    def test_writes_counted_but_not_completed(self, small_config):
        engine, mc, stats, running = make_mc(small_config)
        engine.schedule(
            0,
            lambda t: mc.submit(
                Request(core_id=0, line_addr=0, is_write=True, arrival=0)
            ),
        )
        running[0] = False
        engine.run()
        assert sum(b.writes for b in stats.banks) == 1


class TestRefresh:
    def test_refresh_happens_every_trefi(self, small_config):
        engine, mc, stats, running = make_mc(small_config)

        def stop(t):
            running[0] = False

        engine.schedule(4 * small_config.timing.trefi + 10, stop)
        engine.run()
        # Both subchannels refresh ~4 times, all banks counted.
        total = stats.total_refreshes
        assert total >= 3 * small_config.num_banks

    def test_request_during_refresh_waits(self, small_config):
        engine, mc, stats, running = make_mc(small_config)
        done = []
        trefi = small_config.timing.trefi
        # Subchannel 0 refreshes at trefi; submit just after it starts.
        engine.schedule(trefi + 1, lambda t: submit_read(engine, mc, 0, done))
        engine.schedule(trefi + 2, lambda t: running.__setitem__(0, False))
        engine.run()
        assert done[0][1] >= trefi + small_config.timing.trfc


class TestRfmMode:
    def test_rfm_issued_at_hard_cap(self, small_config):
        setup = MitigationSetup("rfm", threshold=2)
        engine, mc, stats, running = make_mc(small_config, setup)
        done = []
        stride = 64 * small_config.lines_per_row  # same bank, new row

        def go(t):
            for i in range(8):
                submit_read(engine, mc, i * stride, done)

        engine.schedule(0, go)
        engine.schedule(1, lambda t: running.__setitem__(0, False))
        engine.run()
        assert len(done) == 8
        assert stats.total_rfm_commands >= 2
        assert stats.total_mitigations >= 1

    def test_no_rfm_in_baseline(self, small_config):
        engine, mc, stats, running = make_mc(small_config)
        done = []
        engine.schedule(0, lambda t: submit_read(engine, mc, 0, done))
        running[0] = False
        engine.run()
        assert stats.total_rfm_commands == 0


class TestAutoRfmMode:
    def _hammer_same_subarray(self, small_config, per_request_retry=False):
        setup = MitigationSetup(
            "autorfm", threshold=2, policy="fractal",
            per_request_retry=per_request_retry,
        )
        engine, mc, stats, running = make_mc(small_config, setup)
        done = []
        stride = 64 * small_config.lines_per_row

        def go(t):
            # Rows 0..7 of bank 0 — all in subarray 0, beyond the row-hit
            # window, so every request re-ACTs into the mitigated subarray.
            for i in range(8):
                submit_read(engine, mc, i * stride, done)

        engine.schedule(0, go)
        engine.schedule(1, lambda t: running.__setitem__(0, False))
        engine.run()
        return stats, done

    def test_alerts_fire_on_saum_conflicts(self, small_config):
        stats, done = self._hammer_same_subarray(small_config)
        assert len(done) == 8  # every request eventually completes
        assert stats.total_mitigations >= 1
        assert stats.total_alerts >= 1

    def test_per_request_retry_also_completes(self, small_config):
        stats, done = self._hammer_same_subarray(
            small_config, per_request_retry=True
        )
        assert len(done) == 8
        assert stats.total_alerts >= 1

    def test_no_alerts_without_subarray_conflict(self, small_config):
        setup = MitigationSetup("autorfm", threshold=2, policy="fractal")
        engine, mc, stats, running = make_mc(small_config, setup)
        done = []
        # One request per subarray: mitigation never collides with demand.
        row_stride = (
            small_config.banks_per_subchannel
            * small_config.num_subchannels
            * small_config.lines_per_row
        )
        sub_stride = small_config.rows_per_subarray * row_stride

        def go(t):
            for i in range(8):
                submit_read(engine, mc, i * sub_stride, done)

        engine.schedule(0, go)
        engine.schedule(1, lambda t: running.__setitem__(0, False))
        engine.run()
        assert len(done) == 8
        assert stats.total_alerts == 0


class TestPracMode:
    def test_prac_timing_inflates_trc(self, small_config):
        setup = MitigationSetup("prac", prac_trh_d=100)
        engine, mc, stats, running = make_mc(small_config, setup)
        assert mc.timing.trc > small_config.timing.trc

    def test_abo_alert_on_hot_row(self, small_config):
        setup = MitigationSetup("prac", prac_trh_d=30)  # abo threshold 5
        engine, mc, stats, running = make_mc(small_config, setup)
        done = []
        # Re-activate the same row beyond the hit window, 8 times.
        delay = 0

        def go(t):
            submit_read(engine, mc, 0, done)

        for i in range(8):
            delay += 400
            engine.schedule(delay, go)
        engine.schedule(delay + 1, lambda t: running.__setitem__(0, False))
        engine.run()
        assert mc.prac.alerts >= 1
        assert len(done) == 8
