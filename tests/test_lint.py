"""Unit tests for the ``repro.lint`` static-analysis suite.

Each pass is exercised with positive fixtures (must flag) and negative
fixtures (must stay silent); the suppression layers — pragmas and the
checked-in baseline — and the three report formats are covered separately,
and the CLI's exit contract is tested end to end on a seeded violation.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.lint import (
    ALL_PASSES,
    ALL_RULES,
    Baseline,
    BaselineEntry,
    BaselineError,
    lint_source,
    render,
    run_lint,
)
from repro.lint.astutil import collect_self_assignment_targets
from repro.lint.base import ModuleSource

SIM_PATH = "src/repro/sim/fixture.py"
NON_SIM_PATH = "src/repro/analysis/fixture.py"

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def rules_hit(text, path=SIM_PATH):
    """The set of rule ids the full pass suite reports for a snippet."""
    return {f.rule_id for f in lint_source(text, path=path)}


# ----------------------------------------------------------------------
# Per-pass positive fixtures: each snippet must trigger its rule.
# ----------------------------------------------------------------------

POSITIVE = [
    ("DET001", "import time\nt = time.time()\n"),
    ("DET001", "import time\nt = time.perf_counter()\n"),
    ("DET001", "import datetime\nd = datetime.datetime.now()\n"),
    ("DET001", "from datetime import datetime\nd = datetime.utcnow()\n"),
    ("DET002", "import random\nx = random.random()\n"),
    ("DET002", "import random\nrandom.seed(7)\n"),
    ("DET002", "import numpy as np\nx = np.random.rand(4)\n"),
    ("DET002", "import numpy as np\nnp.random.seed(0)\n"),
    ("DET003", "import os\nx = os.environ['REPRO_X']\n"),
    ("DET003", "import os\nx = os.environ.get('REPRO_X', '1')\n"),
    ("DET003", "import os\nx = os.getenv('REPRO_X')\n"),
    ("DET004", "def f(d, x):\n    return d[id(x)]\n"),
    ("DET004", "def f(x):\n    return {id(x): 1}\n"),
    ("DET004", "def f(d, x):\n    return d.get(id(x))\n"),
    ("DET005", "def f(xs):\n    for x in set(xs):\n        pass\n"),
    ("DET005", "def f(xs):\n    s = {x + 1 for x in xs}\n"
               "    for x in s:\n        pass\n"),
    ("DET005", "def f(a, b):\n    for x in {a, b}:\n        pass\n"),
    ("RNG001", "import numpy as np\nrng = np.random.default_rng(42)\n"),
    ("RNG001", "import random\nrng = random.Random(0)\n"),
    ("RNG001", "import numpy as np\nss = np.random.SeedSequence(1234)\n"),
    ("RNG002", "import numpy as np\nrng = np.random.default_rng()\n"),
    ("RNG002", "import random\nrng = random.Random()\n"),
    ("CB001", "def f(engine):\n"
              "    engine.schedule(10, lambda: None)\n"),
    ("CB001", "def f(engine):\n"
              "    def cb():\n        pass\n"
              "    engine.schedule(10, cb)\n"),
    ("CB001", "def f(engine):\n"
              "    engine.schedule_in(5, callback=lambda: None)\n"),
    ("CKPT001", "class Tracker:\n"
                "    def __init__(self):\n"
                "        self.table = {}\n"),
    ("CKPT001", "from dataclasses import dataclass, field\n"
                "@dataclass\n"
                "class Q:\n"
                "    items: list = field(default_factory=list)\n"),
    ("OBS001", "def f(reg, name):\n    reg.counter(name)\n"),
    ("OBS002", "def f(reg):\n    reg.counter('BadName')\n"),
    ("OBS002", "def f(tr, a, b):\n    tr.span(a, b, 'lower_kind')\n"),
    ("OBS003", "def drain(heap, m):\n"
               "    while heap:\n"
               "        heap.pop()\n"
               "        m.inc()\n"),
    ("OBS003", "def drain(heap, h):\n"
               "    while heap:\n"
               "        h.observe(len(heap))\n"),
    ("OBS003", "def drain(heap, tr, t):\n"
               "    while heap:\n"
               "        tr.event(t, 'ACT')\n"),
    ("PAY001", "ROWS = [70000, 70010, 70020, 70030, "
               "70040, 70050, 70060, 70070]\n"),
    ("PAY001", "def attack():\n"
               "    return (1, 2, 3, 4, 5, 6, 7, 8, 9)\n"),
    ("SVC001", "import time\nt = time.time()\n"),
    ("SVC001", "import time\ntime.sleep(0.5)\n"),
    ("SVC001", "import time\nt = time.monotonic()\n"),
    ("SVC001", "import datetime\nd = datetime.datetime.now()\n"),
]


@pytest.mark.parametrize(
    "rule_id,snippet",
    POSITIVE,
    ids=[f"{r}-{i}" for i, (r, _) in enumerate(POSITIVE)],
)
def test_positive_fixture_is_flagged(rule_id, snippet):
    """Each violation fixture triggers exactly the rule it seeds."""
    path = SIM_PATH
    if rule_id == "PAY001":
        path = "src/repro/workloads/fixture.py"  # the pass's home packages
    elif rule_id == "SVC001":
        path = "src/repro/svc/fixture.py"  # the pass's home package
    assert rule_id in rules_hit(snippet, path=path), snippet


# ----------------------------------------------------------------------
# Per-pass negative fixtures: conforming code stays silent.
# ----------------------------------------------------------------------

NEGATIVE = [
    # Sim code that never touches a clock or global stream.
    ("DET001", "def f(engine):\n    return engine.now\n"),
    # Constructing a namespaced Generator is the RNG pass's business,
    # not global state.
    ("DET002", "import numpy as np\n"
               "def f(seed):\n    return np.random.default_rng(seed)\n"),
    # Env reads in their designated home are allowed.
    ("DET003", "import os\nx = os.environ.get('REPRO_X')\n"),
    # id() used outside a keyed position (logging/debug) is fine.
    ("DET004", "def f(x):\n    return id(x)\n"),
    # sorted(...) wrapping and literal constant sets are fine.
    ("DET005", "def f(xs):\n    for x in sorted(set(xs)):\n        pass\n"),
    ("DET005", "def f(x):\n    for k in {'a', 'b'}:\n        pass\n"),
    # Seeds that flow from a parameter or derivation are fine.
    ("RNG001", "import numpy as np\n"
               "def f(streams):\n"
               "    return np.random.default_rng("
               "streams.integer_seed('mc'))\n"),
    ("RNG002", "import random\n"
               "def f(seed):\n    return random.Random(seed)\n"),
    # Bound methods and partials are snapshot-safe callbacks.
    ("CB001", "import functools\n"
              "def f(engine, obj):\n"
              "    engine.schedule(10, obj.tick)\n"
              "    engine.schedule(20, functools.partial(obj.tick, 1))\n"),
    # Registered and frozen classes may hold containers.
    ("CKPT001", "from repro.ckpt import checkpointable\n"
                "@checkpointable(state=('table',))\n"
                "class Tracker:\n"
                "    def __init__(self):\n"
                "        self.table = {}\n"),
    ("CKPT001", "from dataclasses import dataclass\n"
                "@dataclass(frozen=True)\n"
                "class Spec:\n"
                "    rows: int = 0\n"),
    # Convention-conforming literal names pass both obs rules.
    ("OBS001", "def f(reg, tr, a, b):\n"
               "    reg.counter('mc.acts')\n"
               "    tr.span(a, b, 'SAUM')\n"),
    # Drain-boundary aggregation is the sanctioned pattern: plain-int
    # accumulation inside the loop, batched publication at the boundary.
    ("OBS003", "def drain(heap, h, tr, pending):\n"
               "    acts = 0\n"
               "    values = []\n"
               "    while heap:\n"
               "        heap.pop()\n"
               "        acts += 1\n"
               "        values.append(len(heap))\n"
               "    h.observe_many(values)\n"
               "    tr.emit_raw(pending)\n"),
    # Per-event emission outside any while loop is not this rule's business.
    ("OBS003", "def on_refresh(m):\n    m.inc()\n"),
    # Short parameter tuples stay below the sequence bar.
    ("PAY001", "WINDOWS = (4, 8, 16, 32)\n"),
    # Derived sequences (comprehensions) are not inlined literals.
    ("PAY001", "def rows(base):\n"
               "    return [base + 10 * i for i in range(64)]\n"),
    # Non-integer element kills the sequence reading.
    ("PAY001", "XS = [1, 2, 3, 4, 5, 6, 7, 'x']\n"),
    # Wall-clock access routed through the quarantined Clock object.
    ("SVC001", "def stale(clock, path, limit):\n"
               "    return clock.age_of(path) > limit\n"),
    # Event waits (not host-clock reads) are the sanctioned sleep.
    ("SVC001", "def loop(stop, interval):\n"
               "    while not stop.wait(interval):\n        pass\n"),
]


@pytest.mark.parametrize(
    "rule_id,snippet",
    NEGATIVE,
    ids=[f"{r}-neg-{i}" for i, (r, _) in enumerate(NEGATIVE)],
)
def test_negative_fixture_is_clean(rule_id, snippet):
    """Conforming code never trips the rule it is paired with."""
    path = SIM_PATH
    if rule_id == "DET003":
        path = "src/repro/sim/config.py"  # the allowlisted env home
    elif rule_id == "PAY001":
        path = "src/repro/security/fixture.py"  # the pass's home packages
    elif rule_id == "SVC001":
        path = "src/repro/svc/fixture.py"  # the pass's home package
    assert rule_id not in rules_hit(snippet, path=path), snippet


def test_sim_critical_scoping():
    """Determinism rules apply only inside the sim-critical packages."""
    clocky = "import time\nt = time.time()\n"
    assert "DET001" in rules_hit(clocky, path=SIM_PATH)
    assert "DET001" in rules_hit(clocky, path="src/repro/security/kernels.py")
    assert "DET001" not in rules_hit(clocky, path=NON_SIM_PATH)
    # RNG discipline, by contrast, is repo-wide.
    seeded = "import numpy as np\nrng = np.random.default_rng(3)\n"
    assert "RNG001" in rules_hit(seeded, path=NON_SIM_PATH)


def test_obs_package_exempt_from_naming():
    """repro.obs itself rebuilds series from recorded names legitimately."""
    snippet = "def f(reg, name):\n    reg.counter(name)\n"
    assert "OBS001" not in rules_hit(snippet, path="src/repro/obs/metrics.py")
    assert "OBS001" in rules_hit(snippet, path=NON_SIM_PATH)


def test_payload_literal_scoped_to_attack_packages():
    """PAY001 fires only where attack patterns are generated."""
    snippet = "ROWS = [1, 2, 3, 4, 5, 6, 7, 8]\n"
    assert "PAY001" in rules_hit(snippet, path="src/repro/workloads/mix.py")
    assert "PAY001" in rules_hit(snippet, path="src/repro/security/audit.py")
    # Tables elsewhere (configs, analytical constants) are fine.
    assert "PAY001" not in rules_hit(snippet, path=SIM_PATH)
    assert "PAY001" not in rules_hit(snippet, path=NON_SIM_PATH)


def test_svc_clock_scoped_to_svc_outside_the_quarantine():
    """SVC001 fires only in repro.svc, and never in the Clock quarantine."""
    clocky = "import time\nt = time.time()\ntime.sleep(1)\n"
    assert "SVC001" in rules_hit(clocky, path="src/repro/svc/fixture.py")
    # The quarantine module itself is the one sanctioned clock reader.
    assert "SVC001" not in rules_hit(clocky, path="src/repro/svc/clock.py")
    # Outside the service package this pass has no opinion (DET001 covers
    # the sim-critical tree with its own scoping).
    assert "SVC001" not in rules_hit(clocky, path=NON_SIM_PATH)


def test_obs_hotloop_scoped_to_hot_packages():
    """OBS003 fires only in the per-event packages (sim/mc/dram)."""
    snippet = "def drain(heap, m):\n    while heap:\n        m.inc()\n"
    assert "OBS003" in rules_hit(snippet, path=SIM_PATH)
    assert "OBS003" in rules_hit(snippet, path="src/repro/mc/controller.py")
    assert "OBS003" in rules_hit(snippet, path="src/repro/dram/bank.py")
    # Analytical loops may legitimately emit per iteration.
    assert "OBS003" not in rules_hit(snippet, path=NON_SIM_PATH)


# ----------------------------------------------------------------------
# Pragma suppression
# ----------------------------------------------------------------------

def test_pragma_suppresses_named_rule():
    """A same-line lint-ignore pragma downgrades the finding to suppressed."""
    text = ("import numpy as np\n"
            "rng = np.random.default_rng(0)  # repro: lint-ignore[RNG001]\n")
    findings = lint_source(text)
    assert [f.rule_id for f in findings] == ["RNG001"]
    assert findings[0].status == "suppressed"


def test_pragma_wildcard_and_mismatch():
    """``[*]`` suppresses anything; a wrong rule id suppresses nothing."""
    star = ("import time\n"
            "t = time.time()  # repro: lint-ignore[*]\n")
    assert all(f.status == "suppressed" for f in lint_source(star))
    wrong = ("import time\n"
             "t = time.time()  # repro: lint-ignore[RNG001]\n")
    assert any(
        f.rule_id == "DET001" and f.status == "new" for f in lint_source(wrong)
    )


def test_pragma_covers_multiline_statement():
    """A pragma anywhere on a node's [line, end_line] span applies."""
    text = ("import numpy as np\n"
            "rng = np.random.default_rng(\n"
            "    1234,  # repro: lint-ignore[RNG001]\n"
            ")\n")
    findings = lint_source(text)
    assert findings and all(f.status == "suppressed" for f in findings)


# ----------------------------------------------------------------------
# Baseline round-trip
# ----------------------------------------------------------------------

def write_fixture(tmp_path, text):
    """Place a snippet on disk under a sim-critical-looking layout."""
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True, exist_ok=True)
    target = pkg / "fixture.py"
    target.write_text(text)
    return str(target)


def test_baseline_add_and_expire_roundtrip(tmp_path):
    """New finding -> baselined; code healed -> stale entry reported."""
    bad = "import numpy as np\nrng = np.random.default_rng(7)\n"
    path = write_fixture(tmp_path, bad)
    result = run_lint([path], relative_to=str(tmp_path))
    assert not result.ok and len(result.new_findings) == 1

    baseline = Baseline.from_findings(result.new_findings)
    for entry in baseline.entries:
        entry.justification = "test fixture"
    baseline_file = tmp_path / "lint-baseline.json"
    baseline.save(str(baseline_file))

    reloaded = Baseline.load(str(baseline_file))
    result2 = run_lint([path], baseline=reloaded, relative_to=str(tmp_path))
    assert result2.ok
    assert len(result2.baselined_findings) == 1
    assert result2.baselined_findings[0].justification == "test fixture"
    assert result2.stale_baseline == []

    # Heal the code: the entry must be flagged stale, not silently kept.
    write_fixture(tmp_path, "import numpy as np\n"
                            "def f(seed):\n"
                            "    return np.random.default_rng(seed)\n")
    result3 = run_lint(
        [path], baseline=Baseline.load(str(baseline_file)),
        relative_to=str(tmp_path),
    )
    assert result3.ok and len(result3.stale_baseline) == 1


def test_baseline_is_line_drift_tolerant(tmp_path):
    """Unrelated edits moving the flagged line keep the entry matching."""
    bad = "import numpy as np\nrng = np.random.default_rng(7)\n"
    path = write_fixture(tmp_path, bad)
    result = run_lint([path], relative_to=str(tmp_path))
    baseline = Baseline.from_findings(result.new_findings)
    for entry in baseline.entries:
        entry.justification = "test fixture"

    shifted = ("import numpy as np\n\n\nX = 1\n\n"
               "rng = np.random.default_rng(7)\n")
    write_fixture(tmp_path, shifted)
    result2 = run_lint([path], baseline=baseline, relative_to=str(tmp_path))
    assert result2.ok and len(result2.baselined_findings) == 1


def test_baseline_count_budget(tmp_path):
    """An entry's count caps how many identical findings it absorbs."""
    bad = ("import numpy as np\n"
           "a = np.random.default_rng(7)\n"
           "b = np.random.default_rng(7)\n")
    path = write_fixture(tmp_path, bad)
    baseline = Baseline([BaselineEntry(
        rule="RNG001", path="repro/sim/fixture.py",
        context="a = np.random.default_rng(7)", justification="one only",
    )])
    result = run_lint([path], baseline=baseline, relative_to=str(tmp_path))
    assert len(result.baselined_findings) == 1
    assert len(result.new_findings) == 1 and not result.ok


def test_baseline_requires_justification(tmp_path):
    """A silent suppression entry is rejected at load time."""
    payload = {"version": 1, "entries": [
        {"rule": "RNG001", "path": "x.py", "context": "rng = ..."},
    ]}
    target = tmp_path / "bad-baseline.json"
    target.write_text(json.dumps(payload))
    with pytest.raises(BaselineError):
        Baseline.load(str(target))


def test_baseline_rejects_unknown_version(tmp_path):
    """Future/garbage baseline versions fail loudly, not quietly."""
    target = tmp_path / "vnext.json"
    target.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(BaselineError):
        Baseline.load(str(target))


# ----------------------------------------------------------------------
# Report formats
# ----------------------------------------------------------------------

@pytest.fixture
def sample_result(tmp_path):
    """A LintResult with one new finding, for renderer checks."""
    path = write_fixture(
        tmp_path, "import numpy as np\nrng = np.random.default_rng(7)\n"
    )
    return run_lint([path], relative_to=str(tmp_path))


def test_text_report_shape(sample_result):
    """The text renderer names the rule and ends with the verdict line."""
    text = render(sample_result, "text")
    assert "RNG001" in text and "rng-literal-seed" in text
    assert text.strip().endswith("lint: FAIL (new findings)")


def test_json_report_shape(sample_result):
    """The JSON document carries ok/findings/summary with stable keys."""
    payload = json.loads(render(sample_result, "json"))
    assert payload["ok"] is False
    assert payload["summary"]["new"] == 1
    (finding,) = payload["findings"]
    assert finding["rule"] == "RNG001"
    assert finding["path"].endswith("repro/sim/fixture.py")
    assert finding["status"] == "new"
    assert isinstance(finding["line"], int) and finding["line"] >= 1


def test_sarif_report_shape(sample_result):
    """The SARIF document has the 2.1.0 skeleton code scanners expect."""
    payload = json.loads(render(sample_result, "sarif"))
    assert payload["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in payload["$schema"]
    (run,) = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = {r["id"] for r in driver["rules"]}
    assert set(ALL_RULES) <= rule_ids
    (res,) = run["results"]
    assert res["ruleId"] == "RNG001" and res["level"] == "error"
    region = res["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1 and region["startColumn"] >= 1


def test_sarif_marks_suppressions(tmp_path):
    """Pragma-suppressed findings surface as inSource suppressions."""
    path = write_fixture(
        tmp_path,
        "import numpy as np\n"
        "rng = np.random.default_rng(7)  # repro: lint-ignore[RNG001]\n",
    )
    result = run_lint([path], relative_to=str(tmp_path))
    payload = json.loads(render(result, "sarif"))
    (res,) = payload["runs"][0]["results"]
    assert res["suppressions"] == [{"kind": "inSource"}]


# ----------------------------------------------------------------------
# Shared AST walk (delegated from repro.ckpt.contract)
# ----------------------------------------------------------------------

def test_collect_self_assignment_targets_matches_contract_semantics():
    """The shared walk binds plain/aug/ann/tuple targets, not subscripts."""
    import ast

    tree = ast.parse(
        "class C:\n"
        "    def __init__(self):\n"
        "        self.a = 1\n"
        "        self.b, self.c = 1, 2\n"
        "        self.d += 1\n"
        "        self.e: int = 0\n"
        "        self.table[k] = 1\n"
        "        local = 5\n"
    )
    assert collect_self_assignment_targets(tree) == {"a", "b", "c", "d", "e"}


def test_contract_module_uses_shared_walk():
    """repro.ckpt.contract's attribute walk is the repro.lint one."""
    import repro.ckpt.contract as contract

    assert (
        contract.collect_self_assignment_targets
        is collect_self_assignment_targets
    )


# ----------------------------------------------------------------------
# CLI exit contract
# ----------------------------------------------------------------------

def run_cli(*argv, cwd=None):
    """Invoke ``python -m repro lint`` in a subprocess; return the result."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True, text=True, env=env, cwd=cwd or REPO_ROOT,
    )


def test_cli_exits_nonzero_on_seeded_violation(tmp_path):
    """A planted violation makes the CLI exit 1 and name the rule."""
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "seeded.py").write_text(
        "import time\n"
        "def tick(engine):\n"
        "    return time.time()\n"
    )
    proc = run_cli(str(pkg / "seeded.py"), "--baseline", "/nonexistent.json")
    assert proc.returncode == 1
    assert "DET001" in proc.stdout


def test_cli_exits_zero_on_clean_fixture(tmp_path):
    """A conforming file exits 0 with the PASS verdict."""
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text(
        "def tick(engine):\n"
        "    return engine.now\n"
    )
    proc = run_cli(str(pkg / "clean.py"), "--baseline", "/nonexistent.json")
    assert proc.returncode == 0
    assert "lint: PASS" in proc.stdout


def test_cli_missing_path_exits_2():
    """Pointing the CLI at a missing path is a usage error, not a pass."""
    proc = run_cli("/no/such/path_xyz")
    assert proc.returncode == 2


def test_cli_list_rules_names_every_rule():
    """--list-rules prints the full catalog."""
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ALL_RULES:
        assert rule_id in proc.stdout


def test_every_pass_exposes_registered_rules():
    """ALL_RULES is exactly the union of the passes' rule tuples."""
    from_passes = {
        rule.rule_id for lint_pass in ALL_PASSES for rule in lint_pass.rules
    }
    assert from_passes == set(ALL_RULES)


def test_syntax_error_becomes_parse_finding(tmp_path):
    """An unparseable file yields a PARSE finding instead of crashing."""
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n")
    result = run_lint([str(target)], relative_to=str(tmp_path))
    assert not result.ok
    assert [f.rule_id for f in result.findings] == ["PARSE"]


def test_module_source_classifies_packages():
    """ModuleSource path parsing drives the sim-critical scoping."""
    sim = ModuleSource.from_text("x = 1\n", "src/repro/mc/controller.py")
    assert sim.is_sim_critical and sim.in_package("mc")
    kernels = ModuleSource.from_text("x = 1\n", "src/repro/security/kernels.py")
    assert kernels.is_sim_critical
    analysis = ModuleSource.from_text("x = 1\n", "src/repro/analysis/plots.py")
    assert not analysis.is_sim_critical
