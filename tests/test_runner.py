"""Experiment runner: parallel determinism and the persistent result cache.

The contract under test is the one the benchmarks rely on: fanning a batch
across worker processes changes wall-clock only — results are bit-identical
to the serial path, in submission order — and a warm cache answers repeat
jobs without running a single simulation.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import (
    CACHE_SCHEMA_VERSION,
    ExperimentRunner,
    Job,
    ResultCache,
    job_key,
)
from repro.mc.setup import MitigationSetup
from repro.obs import ObsConfig

REQUESTS = 200  # tiny slices: this file tests plumbing, not the paper


def make_runner(small_config, tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    kwargs.setdefault("requests", REQUESTS)
    return ExperimentRunner(config=small_config, **kwargs)


def sample_jobs():
    return [
        Job("add", MitigationSetup("none"), "zen", REQUESTS, 1),
        Job("add", MitigationSetup("rfm", threshold=8), "zen", REQUESTS, 1),
        Job("mcf", MitigationSetup("autorfm", threshold=4, policy="fractal"),
            "rubix", REQUESTS, 1),
    ]


class TestParallelDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self, small_config, tmp_path):
        serial = make_runner(small_config, tmp_path / "s", jobs=1,
                             use_cache=False)
        parallel = make_runner(small_config, tmp_path / "p", jobs=4,
                               use_cache=False)
        jobs = sample_jobs()
        serial_results = serial.run_many(jobs)
        parallel_results = parallel.run_many(jobs)
        assert serial.simulations_run == len(jobs)
        assert parallel.simulations_run == len(jobs)
        for ours, theirs in zip(serial_results, parallel_results):
            # SimStats is a plain dataclass tree of ints: == is bit-exact.
            assert ours.stats == theirs.stats
            assert ours.mapping == theirs.mapping

    def test_jobs_env_var_drives_worker_count(self, small_config, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        runner = make_runner(small_config, tmp_path, use_cache=False)
        assert runner.jobs == 4
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert runner.jobs == 1  # re-read per batch, not frozen at init

    def test_obs_outputs_bit_identical_across_worker_counts(
        self, small_config, tmp_path
    ):
        """The observability outputs honour the same contract as SimStats:
        the trace JSONL and the metrics snapshot coming back from a worker
        process are byte-for-byte what the serial path produces."""
        obs = ObsConfig(metrics=True, trace=True)
        jobs = [
            Job("add", MitigationSetup("autorfm", threshold=4,
                                       policy="fractal"),
                "rubix", REQUESTS, 1, obs=obs),
            Job("mcf", MitigationSetup("rfm", threshold=8),
                "zen", REQUESTS, 1, obs=obs),
        ]
        serial = make_runner(small_config, tmp_path / "s", jobs=1,
                             use_cache=False)
        parallel = make_runner(small_config, tmp_path / "p", jobs=4,
                               use_cache=False)
        for ours, theirs in zip(serial.run_many(jobs),
                                parallel.run_many(jobs)):
            assert ours.obs is not None and theirs.obs is not None
            assert ours.obs.trace_jsonl == theirs.obs.trace_jsonl
            assert ours.obs.metrics == theirs.obs.metrics
            assert ours.obs.trace_dropped == theirs.obs.trace_dropped
            # Only the quarantined wall-clock profile may differ.
            assert ours.obs.trace_jsonl  # non-trivial: events were traced

    def test_run_many_preserves_order_and_dedups(self, small_config, tmp_path):
        runner = make_runner(small_config, tmp_path, jobs=1)
        jobs = sample_jobs()
        batch = [jobs[0], jobs[1], jobs[0], jobs[2], jobs[1]]
        results = runner.run_many(batch)
        assert len(results) == len(batch)
        # Duplicates simulate once but every slot gets its answer.
        assert runner.simulations_run == len(jobs)
        assert results[0].stats == results[2].stats
        assert results[1].stats == results[4].stats


class TestResultCache:
    def test_warm_cache_runs_zero_simulations(self, small_config, tmp_path):
        first = make_runner(small_config, tmp_path, jobs=1)
        jobs = sample_jobs()
        cold = first.run_many(jobs)
        assert first.simulations_run == len(jobs)

        second = make_runner(small_config, tmp_path, jobs=1)
        warm = second.run_many(jobs)
        assert second.simulations_run == 0
        assert second.cache_hits == len(jobs)
        for a, b in zip(cold, warm):
            assert a.stats == b.stats
            assert a.setup == b.setup
            assert a.seed == b.seed

    def test_schema_version_bump_invalidates(self, small_config, tmp_path):
        job = sample_jobs()[0]
        v1 = make_runner(small_config, tmp_path, jobs=1)
        v1.run(job)
        assert v1.simulations_run == 1

        v2 = make_runner(small_config, tmp_path, jobs=1,
                         schema_version=CACHE_SCHEMA_VERSION + 1)
        v2.run(job)
        assert v2.cache_hits == 0
        assert v2.simulations_run == 1  # stale entry ignored, re-simulated

    def test_cache_key_separates_every_knob(self, small_config):
        base = Job("add", MitigationSetup("none"), "zen", REQUESTS, 1)
        variants = [
            Job("mcf", MitigationSetup("none"), "zen", REQUESTS, 1),
            Job("add", MitigationSetup("rfm", threshold=8), "zen", REQUESTS, 1),
            Job("add", MitigationSetup("none"), "rubix", REQUESTS, 1),
            Job("add", MitigationSetup("none"), "zen", REQUESTS + 1, 1),
            Job("add", MitigationSetup("none"), "zen", REQUESTS, 2),
        ]
        keys = {job_key(j, small_config, j.requests) for j in [base] + variants}
        assert len(keys) == len(variants) + 1
        # ... and the key is stable across processes/runs for equal inputs.
        assert job_key(base, small_config, REQUESTS) == job_key(
            Job("add", MitigationSetup("none"), "zen", REQUESTS, 1),
            small_config,
            REQUESTS,
        )

    def test_corrupt_entry_is_a_miss(self, small_config, tmp_path):
        runner = make_runner(small_config, tmp_path, jobs=1)
        job = sample_jobs()[0]
        reference = runner.run(job)
        key = runner.key_for(job)
        path = runner.cache._path(key)
        with open(path, "w") as f:
            f.write("{ not json")
        again = runner.run(job)
        assert runner.simulations_run == 2  # corrupt file did not poison it
        assert again.stats == reference.stats

    def test_disabled_cache_always_simulates(self, small_config, tmp_path):
        runner = make_runner(small_config, tmp_path, jobs=1, use_cache=False)
        assert runner.cache is None
        job = sample_jobs()[0]
        runner.run(job)
        runner.run(job)
        assert runner.simulations_run == 2

    def test_clear_empties_the_directory(self, small_config, tmp_path):
        runner = make_runner(small_config, tmp_path, jobs=1)
        runner.run_many(sample_jobs())
        assert len(runner.cache) == len(sample_jobs())
        removed = runner.cache.clear()
        assert removed == len(sample_jobs())
        assert len(runner.cache) == 0


class TestJobValidation:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            Job("definitely-not-a-workload")

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            Job("add", mapping="striped")
