"""Tests for the K-cipher-style block cipher (bijectivity is load-bearing:
Rubix must never alias two lines onto one location)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.kcipher import KCipher


class TestKCipherBasics:
    def test_encrypt_stays_in_domain(self):
        cipher = KCipher(domain=1000, key=5)
        for value in range(1000):
            assert 0 <= cipher.encrypt(value) < 1000

    def test_decrypt_inverts_encrypt_small_domain(self):
        cipher = KCipher(domain=1000, key=5)
        for value in range(1000):
            assert cipher.decrypt(cipher.encrypt(value)) == value

    def test_bijective_on_full_power_of_two_domain(self):
        cipher = KCipher(domain=1 << 12, key=77)
        images = {cipher.encrypt(v) for v in range(1 << 12)}
        assert len(images) == 1 << 12

    def test_bijective_on_odd_domain(self):
        cipher = KCipher(domain=1013, key=3)  # prime, forces cycle-walking
        images = {cipher.encrypt(v) for v in range(1013)}
        assert len(images) == 1013

    def test_different_keys_give_different_permutations(self):
        a = KCipher(domain=1 << 16, key=1)
        b = KCipher(domain=1 << 16, key=2)
        assert any(a.encrypt(v) != b.encrypt(v) for v in range(64))

    def test_deterministic(self):
        assert KCipher(1 << 20, 9).encrypt(12345) == KCipher(1 << 20, 9).encrypt(12345)

    def test_rejects_tiny_domain(self):
        with pytest.raises(ValueError):
            KCipher(domain=1, key=0)

    def test_rejects_out_of_domain_plaintext(self):
        cipher = KCipher(domain=100, key=0)
        with pytest.raises(ValueError):
            cipher.encrypt(100)
        with pytest.raises(ValueError):
            cipher.encrypt(-1)
        with pytest.raises(ValueError):
            cipher.decrypt(100)

    def test_diffusion_adjacent_inputs_scatter(self):
        cipher = KCipher(domain=1 << 29, key=0x5EED)
        outs = [cipher.encrypt(v) for v in range(256)]
        # Adjacent inputs should not map to adjacent outputs.
        adjacent = sum(1 for a, b in zip(outs, outs[1:]) if abs(a - b) < 64)
        assert adjacent < 5


class TestKCipherProperties:
    @given(
        key=st.integers(min_value=0, max_value=2**64 - 1),
        value=st.integers(min_value=0, max_value=(1 << 29) - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_round_trip_on_line_address_domain(self, key, value):
        cipher = KCipher(domain=1 << 29, key=key)
        assert cipher.decrypt(cipher.encrypt(value)) == value

    @given(
        domain=st.integers(min_value=2, max_value=5000),
        key=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=50, deadline=None)
    def test_injective_on_arbitrary_domains(self, domain, key):
        cipher = KCipher(domain=domain, key=key)
        sample = range(min(domain, 256))
        images = [cipher.encrypt(v) for v in sample]
        assert len(set(images)) == len(images)
        assert all(0 <= img < domain for img in images)
