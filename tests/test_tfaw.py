"""Tests for the tFAW four-activate-window constraint."""

import dataclasses

from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.sim.cmdlog import ACT, CommandLog
from repro.sim.config import DramTiming
from tests.test_system import make_traces


class TestTfaw:
    def test_timing_constant(self):
        assert DramTiming().tfaw == 40  # 10 ns at 4 GHz

    def test_never_five_acts_in_window(self, small_config):
        log = CommandLog()
        traces = make_traces(small_config, n=1000)
        simulate(traces, MitigationSetup("none"), small_config, "zen",
                 command_log=log)
        acts = sorted(
            (r.time, r.bank) for r in log.of_kind(ACT)
        )
        per_sc = {}
        banks_per_sc = small_config.banks_per_subchannel
        for t, bank in acts:
            per_sc.setdefault(bank // banks_per_sc, []).append(t)
        tfaw = small_config.timing.tfaw
        for times in per_sc.values():
            for i in range(4, len(times)):
                assert times[i] - times[i - 4] >= tfaw

    def test_tight_tfaw_throttles_bandwidth(self, small_config):
        """A much larger tFAW visibly reduces achievable ACT rate."""
        traces = make_traces(small_config, n=1200)
        fast = simulate(traces, MitigationSetup("none"), small_config, "zen")
        slow_config = dataclasses.replace(
            small_config,
            timing=dataclasses.replace(small_config.timing, tfaw_ns=100.0),
        )
        slow = simulate(traces, MitigationSetup("none"), slow_config, "zen")
        assert slow.stats.cycles > fast.stats.cycles

    def test_audit_includes_tfaw_rule(self, small_config):
        log = CommandLog()
        # Five ACTs to subchannel 0 within 32 cycles (< tFAW = 40).
        for i in range(5):
            log.record(i * 8, ACT, bank=i % 4, row=i)
        violations = log.verify(small_config)
        assert any(v.rule == "tFAW" for v in violations)
