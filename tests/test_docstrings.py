"""Quality gate: every public module, class, and function is documented."""

import importlib
import inspect
import pathlib
import pkgutil

import repro

PACKAGE_ROOT = pathlib.Path(repro.__file__).parent


def iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_public_methods_documented(self):
        missing = []
        for module in iter_modules():
            for cls_name, cls in vars(module).items():
                if not inspect.isclass(cls) or cls_name.startswith("_"):
                    continue
                if getattr(cls, "__module__", None) != module.__name__:
                    continue
                for meth_name, meth in vars(cls).items():
                    if meth_name.startswith("_"):
                        continue
                    if not inspect.isfunction(meth):
                        continue
                    if (meth.__doc__ or "").strip():
                        continue
                    # Interface implementations inherit the contract doc
                    # from the base class (Tracker, MitigationPolicy, ...).
                    inherited = any(
                        (getattr(base, meth_name, None) is not None)
                        and (
                            getattr(base, meth_name).__doc__ or ""
                        ).strip()
                        for base in cls.__mro__[1:]
                    )
                    if inherited:
                        continue
                    missing.append(f"{module.__name__}.{cls_name}.{meth_name}")
        assert missing == []
