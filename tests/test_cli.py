"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCliSecurity:
    def test_security_prints_thresholds(self, capsys):
        assert main(["security", "--windows", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "TRH-D" in out
        assert "53" in out  # the FM safety bound

    def test_security_with_attack(self, capsys):
        code = main(["security", "--windows", "4", "--attack-acts", "4000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Monte-Carlo" in out
        assert "mitigations" in out


class TestCliCatalog:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("bwaves", "ConnComp", "triad"):
            assert name in out

    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "128 B" in out


class TestCliRun:
    def test_run_small(self, capsys):
        code = main(
            ["run", "--workload", "wrf", "--mechanism", "autorfm",
             "--threshold", "4", "--requests", "300"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slowdown vs Zen baseline" in out
        assert "AutoRFM-4" in out

    def test_run_unknown_workload_fails(self, capsys):
        assert main(["run", "--workload", "nope", "--requests", "10"]) == 2

    def test_run_baseline_mechanism(self, capsys):
        code = main(
            ["run", "--workload", "wrf", "--mechanism", "none",
             "--mapping", "zen", "--requests", "300"]
        )
        assert code == 0
        assert "baseline" in capsys.readouterr().out

    def test_sweep_small(self, capsys):
        code = main(
            ["sweep", "--workloads", "wrf", "--threshold", "8",
             "--requests", "300"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RFM-8" in out and "AutoRFM-8" in out

    def test_sweep_unknown_workload_fails(self):
        assert main(["sweep", "--workloads", "nope", "--requests", "10"]) == 2


class TestCliAuditAndTradeoffs:
    def test_tradeoffs(self, capsys):
        assert main(["tradeoffs", "--window", "8"]) == 0
        out = capsys.readouterr().out
        assert "MINT" in out and "Mithril" in out

    def test_audit_small(self, capsys):
        code = main(["audit", "--acts", "400", "--row", "500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "worst row pressure" in out
        assert "timing violations" in out


class TestCliReproduce:
    def test_list_experiments(self, capsys):
        assert main(["reproduce", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig3_rfm_slowdown" in out
        assert "table6_rm_vs_fm" in out

    def test_unknown_experiment(self, capsys):
        assert main(["reproduce", "definitely-not-a-thing"]) == 2


class TestCliParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_mechanism(self):
        with pytest.raises(SystemExit):
            main(["run", "--mechanism", "magic"])


class TestCliSubmitFallback:
    def test_submit_without_daemon_executes_in_process(self, capsys):
        """`repro submit` degrades to the plain runner when no daemon is
        listening on the socket."""
        code = main([
            "submit", "--workloads", "xz", "--mechanism", "autorfm",
            "--threshold", "4", "--requests", "300",
            "--socket", "/tmp/rsvc-definitely-absent.sock",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "executing in-process" in captured.err
        assert "xz (in-process)" in captured.out
        assert "cycles" in captured.out

    def test_submit_rejects_unknown_workload(self, capsys):
        code = main([
            "submit", "--workloads", "nope",
            "--socket", "/tmp/rsvc-definitely-absent.sock",
        ])
        assert code == 2
        assert "unknown workloads" in capsys.readouterr().err
