"""Tests for the analytical security models (Appendices A and B)."""

import math

import pytest

from repro.security.fractal_model import (
    ESCAPE_TARGET,
    FM_SAFE_TRHD,
    fm_damage,
    fm_escape_probability,
    fm_max_damage,
    fm_safe_trhd,
    mint_escape_probability,
    mixed_attack_escape,
)
from repro.security.mint_model import (
    mint_tolerated_trhd,
    mint_tolerated_trhs,
    mttf_years_for_threshold,
)
from repro.security.thresholds import TRH_HISTORY, halving_time_years, threshold_trend


class TestMintModel:
    def test_paper_operating_points_within_tolerance(self):
        """Table III (RM) and Table VI (FM): model within ~10 % of paper."""
        paper_rm = {4: 96, 8: 182, 16: 356, 32: 702}
        for window, expected in paper_rm.items():
            got = mint_tolerated_trhd(window, recursive=True)
            assert abs(got - expected) / expected < 0.10
        paper_fm = {4: 74, 5: 96, 6: 117, 8: 161}
        for window, expected in paper_fm.items():
            got = mint_tolerated_trhd(window, recursive=False)
            assert abs(got - expected) / expected < 0.10

    def test_fm_beats_rm_at_every_window(self):
        # Selecting from W slots instead of W+1 lowers the threshold.
        for window in (4, 5, 6, 8, 16, 32):
            assert mint_tolerated_trhd(window) < mint_tolerated_trhd(
                window, recursive=True
            )

    def test_threshold_grows_with_window(self):
        thresholds = [mint_tolerated_trhd(w) for w in (4, 8, 16, 32)]
        assert thresholds == sorted(thresholds)

    def test_sub_100_at_window_four(self):
        # The paper's headline: AutoRFM-4 + FM tolerates sub-100 TRH-D.
        assert mint_tolerated_trhd(4, recursive=False) < 100

    def test_trhd_is_half_trhs(self):
        trhs = mint_tolerated_trhs(4)
        assert mint_tolerated_trhd(4) == math.ceil(trhs / 2)

    def test_longer_mttf_needs_lower_threshold(self):
        strict = mint_tolerated_trhd(4, mttf_years=1e6)
        lax = mint_tolerated_trhd(4, mttf_years=1.0)
        assert strict > lax  # more escapes tolerated -> higher T needed

    def test_inverse_model_round_trips(self):
        trhd = mint_tolerated_trhd(4)
        years = mttf_years_for_threshold(trhd, window=4)
        assert years >= 10_000 * 0.5  # rounding up T only helps

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            mint_tolerated_trhd(1)
        with pytest.raises(ValueError):
            mint_tolerated_trhd(4, mttf_years=0)
        with pytest.raises(ValueError):
            mttf_years_for_threshold(0, window=4)


class TestFractalModel:
    def test_damage_formula(self):
        # Eq. 8: Damage = 1.25 * p * N.
        assert fm_damage(0.5, 100) == pytest.approx(62.5)

    def test_escape_probability_eq9(self):
        assert fm_escape_probability(0) == 1.0
        assert fm_escape_probability(104) == pytest.approx(
            math.exp(-104 / 2.5)
        )

    def test_max_damage_near_104(self):
        # Eq. 10: escape 1e-18 -> damage ~104.
        assert fm_max_damage() == pytest.approx(103.6, abs=0.5)

    def test_safe_trhd_is_53(self):
        assert fm_safe_trhd() == FM_SAFE_TRHD == 53

    def test_autorfm_min_threshold_above_fm_bound(self):
        # The design is consistent: AutoRFM's lowest TRH-D (74) exceeds the
        # FM transitive-attack bound (53), so direct attacks dominate.
        assert mint_tolerated_trhd(4) > FM_SAFE_TRHD

    def test_mint_escape_decays_with_damage(self):
        assert mint_escape_probability(0, 4) == 1.0
        assert mint_escape_probability(100, 4) < mint_escape_probability(50, 4)

    def test_mixed_attack_is_product(self):
        combined = mixed_attack_escape(40, 80, window=4)
        assert combined == pytest.approx(
            fm_escape_probability(40) * mint_escape_probability(80, 4)
        )

    def test_mixed_attack_weaker_than_pure_direct(self):
        """Appendix B's argument: splitting activations between FM-induced
        and direct damage escapes with LOWER probability than pure direct,
        so an attacker gains nothing from mixing."""
        total = 120
        pure = mint_escape_probability(total, 4)
        mixed = mixed_attack_escape(40, total - 40, window=4)
        assert mixed < pure

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            fm_damage(1.5, 10)
        with pytest.raises(ValueError):
            fm_escape_probability(-1)
        with pytest.raises(ValueError):
            fm_max_damage(escape_target=2.0)
        with pytest.raises(ValueError):
            mint_escape_probability(10, window=1)

    def test_escape_target_is_mttf_consistent(self):
        assert ESCAPE_TARGET == 1e-18


class TestThresholdHistory:
    def test_table2_entries(self):
        generations = [e.generation for e in TRH_HISTORY]
        assert generations == ["DDR3-old", "DDR3-new", "DDR4", "LPDDR4"]

    def test_monotonically_decreasing(self):
        values = [e.representative for e in TRH_HISTORY]
        assert values == sorted(values, reverse=True)

    def test_ddr3_and_lpddr4_paper_values(self):
        assert TRH_HISTORY[0].representative == 139_000
        assert TRH_HISTORY[-1].representative == 4_800

    def test_trend_pairs(self):
        trend = threshold_trend()
        assert trend[0] == (2014, 139_000)
        assert trend[-1] == (2020, 4_800)

    def test_halving_time_is_about_a_year(self):
        assert 0.5 < halving_time_years() < 3.0


class TestSweepPatternMemo:
    """The Monte-Carlo sweep's pattern builder is memoized — repeat
    probes of the same (window, acts) cell must not rebuild it, and the
    memo must be invisible in the results."""

    def test_memoized_calls_are_identical(self):
        from repro.security import thresholds
        from repro.security.thresholds import (
            _sweep_pattern,
            montecarlo_tolerated_threshold,
        )

        thresholds._PATTERN_MEMO.clear()
        first = montecarlo_tolerated_threshold(
            window=2, seeds=3, acts=300
        )
        assert thresholds._PATTERN_MEMO  # populated by the sweep
        pattern = _sweep_pattern(2, 300, 70_000, None, None)
        assert _sweep_pattern(2, 300, 70_000, None, None) is pattern
        second = montecarlo_tolerated_threshold(
            window=2, seeds=3, acts=300
        )
        assert first == second

    def test_memo_values_are_immutable_tuples(self):
        from repro.security.thresholds import _sweep_pattern

        assert isinstance(_sweep_pattern(2, 200, 70_000, None, None), tuple)

    def test_scenario_params_require_scenario(self):
        import pytest

        from repro.security.thresholds import montecarlo_tolerated_threshold

        with pytest.raises(ValueError):
            montecarlo_tolerated_threshold(
                window=2, seeds=2, acts=100,
                scenario_params={"acts": 100},
            )
