"""Deeper memory-controller behaviours: bus serialization, wakeup dedup,
FIFO fairness, REF staggering."""

from repro.mapping import ZenMapping
from repro.mc.controller import MemoryController
from repro.mc.request import Request
from repro.mc.setup import MitigationSetup
from repro.sim.cmdlog import REF, CommandLog
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.sim.stats import SimStats


def build(small_config, setup=None, log=None):
    engine = Engine()
    stats = SimStats.with_shape(small_config.num_banks, small_config.num_cores)
    running = [True]
    mc = MemoryController(
        config=small_config,
        mapping=ZenMapping(small_config),
        engine=engine,
        setup=setup or MitigationSetup("none"),
        streams=RngStreams(0),
        stats=stats,
        keep_running=lambda: running[0],
        command_log=log,
    )
    return engine, mc, stats, running


def read(engine, mc, line, done):
    mc.submit(
        Request(
            core_id=0,
            line_addr=line,
            is_write=False,
            arrival=engine.now,
            on_complete=lambda t, l=line: done.append((l, t)),
        )
    )


class TestBusSerialization:
    def test_same_subchannel_bursts_serialize(self, small_config):
        engine, mc, stats, running = build(small_config)
        done = []

        def go(t):
            # Two different banks of subchannel 0: ACTs overlap, data
            # transfers share the bus.
            read(engine, mc, 0, done)
            read(engine, mc, 2, done)

        engine.schedule(0, go)
        running[0] = False
        engine.run()
        times = sorted(t for _, t in done)
        assert times[1] - times[0] >= small_config.timing.burst

    def test_different_subchannels_overlap(self, small_config):
        engine, mc, stats, running = build(small_config)
        done = []
        # Line 64 is page 1 -> other subchannel under the Zen layout.
        zen = ZenMapping(small_config)
        assert zen.locate(0).subchannel != zen.locate(64).subchannel

        def go(t):
            read(engine, mc, 0, done)
            read(engine, mc, 64, done)

        engine.schedule(0, go)
        running[0] = False
        engine.run()
        times = sorted(t for _, t in done)
        assert times[1] - times[0] < small_config.timing.burst


class TestQueueFairness:
    def test_same_bank_same_row_requests_complete_in_order(self, small_config):
        engine, mc, stats, running = build(small_config)
        done = []
        row_stride = (
            small_config.banks_per_subchannel
            * small_config.num_subchannels
            * small_config.lines_per_row
        )

        def go(t):
            for i in range(4):
                read(engine, mc, i * row_stride, done)  # bank 0, rows 0..3

        engine.schedule(0, go)
        running[0] = False
        engine.run()
        completion_order = [line for line, _ in done]
        assert completion_order == sorted(completion_order)

    def test_row_hit_can_bypass_older_conflicting_request(self, small_config):
        """FR-FCFS: a younger request hitting the open row is served before
        an older request that needs a new ACT."""
        engine, mc, stats, running = build(small_config)
        done = []
        row_stride = (
            small_config.banks_per_subchannel
            * small_config.num_subchannels
            * small_config.lines_per_row
        )

        def first(t):
            read(engine, mc, 0, done)  # opens bank 0 row 0

        def second(t):
            read(engine, mc, row_stride, done)  # bank 0, row 1 (older)
            read(engine, mc, 1, done)  # bank 0, row 0 (younger, hits)

        engine.schedule(0, first)
        engine.schedule(10, second)
        running[0] = False
        engine.run()
        order = [line for line, _ in done]
        assert order.index(1) < order.index(row_stride)
        assert stats.total_row_hits >= 1


class TestRefStagger:
    def test_subchannels_refresh_at_different_times(self, small_config):
        log = CommandLog()
        engine, mc, stats, running = build(small_config, log=log)
        engine.schedule(
            2 * small_config.timing.trefi + 5,
            lambda t: running.__setitem__(0, False),
        )
        engine.run()
        refs = log.of_kind(REF)
        banks_per_sc = small_config.banks_per_subchannel
        sc0 = {r.time for r in refs if r.bank < banks_per_sc}
        sc1 = {r.time for r in refs if r.bank >= banks_per_sc}
        assert sc0 and sc1
        assert sc0.isdisjoint(sc1)  # staggered, never simultaneous


class TestWakeupDedup:
    def test_many_arrivals_do_not_multiply_events(self, small_config):
        """Submitting many requests to one blocked bank must not schedule a
        wakeup per request (the dedup keeps the event count linear)."""
        engine, mc, stats, running = build(small_config)
        done = []
        row_stride = (
            small_config.banks_per_subchannel
            * small_config.num_subchannels
            * small_config.lines_per_row
        )

        def go(t):
            for i in range(12):
                read(engine, mc, (i % 6) * row_stride, done)

        engine.schedule(0, go)
        running[0] = False
        engine.run(max_events=5_000)  # a storm would trip this bound
        assert len(done) == 12

    def test_pending_requests_accessor(self, small_config):
        engine, mc, stats, running = build(small_config)
        engine.schedule(0, lambda t: read(engine, mc, 0, []))
        assert mc.pending_requests() == 0
        running[0] = False
        engine.run()
        assert mc.pending_requests() == 0


class TestDescribeAllMechanisms:
    def test_describe_is_unique_per_mechanism(self):
        setups = [
            MitigationSetup("none"),
            MitigationSetup("rfm", threshold=4),
            MitigationSetup("autorfm", threshold=4),
            MitigationSetup("prac"),
            MitigationSetup("smd", threshold=5),
            MitigationSetup("blockhammer"),
        ]
        descriptions = [s.describe() for s in setups]
        assert len(set(descriptions)) == len(descriptions)
        assert any("BlockHammer" in d for d in descriptions)
