"""Service-layer crash recovery: SIGKILL a worker mid-sweep, assert the
rescheduled shard resumes from the newest valid segment snapshot and the
final result is bit-identical to an uninterrupted in-process run.

This is the daemon-side twin of the checkpoint differential suite
(``test_ckpt_resume.py``): the segment-snapshot machinery already
guarantees bit-identity on resume; here we prove the *service* actually
drives it — detecting the dead worker, requeueing the record at the head
of its priority class, and respawning with ``resume=True``.
"""

import json
import os
import shutil
import signal
import tempfile
import threading

import pytest

from repro.analysis.runner import ExperimentRunner, Job, result_to_dict
from repro.mc.setup import MitigationSetup
from repro.svc import SweepClient, SweepService
from repro.svc.clock import CLOCK

#: Sized (with SEGMENT) so the sweep crosses at least two snapshot
#: boundaries — same operating point as the checkpoint resume suite.
REQUESTS = 400
SEGMENT = 8_000
SETUP = MitigationSetup(mechanism="autorfm", tracker="mint", threshold=4)


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@pytest.fixture
def service_dir():
    path = tempfile.mkdtemp(prefix="rsvc-", dir="/tmp")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def test_sigkilled_worker_resumes_from_newest_snapshot(service_dir):
    service = SweepService(
        service_dir + "/k.sock",
        workers=1,
        requests=REQUESTS,
        cache_dir=service_dir + "/cache",
        poll_interval=0.02,
    )
    thread = threading.Thread(target=service.run, daemon=True)
    thread.start()
    assert service.wait_ready(10)
    try:
        job = Job("mcf", SETUP, "rubix", REQUESTS, 1,
                  segment_cycles=SEGMENT)
        with SweepClient(service.socket_path) as client:
            (job_id,) = client.submit([job])

            # Wait (bounded) for the worker to clear a snapshot boundary,
            # then SIGKILL it mid-sweep.
            deadline = CLOCK.now() + 120.0
            pid = None
            while CLOCK.now() < deadline:
                (record,) = client.status(job_id)
                if record["state"] == "running" and record["snapshots"] >= 1:
                    pid = record["worker_pid"]
                    break
                assert record["state"] not in ("done", "failed"), (
                    f"job finished before the kill: {record}"
                )
                CLOCK.sleep(0.02)
            assert pid is not None, "never observed a snapshot boundary"
            os.kill(pid, signal.SIGKILL)

            response = client.result(job_id, wait=True, timeout=240)
            (record,) = client.status(job_id)

        # The daemon saw the crash, requeued, and relaunched exactly once.
        assert record["state"] == "done"
        assert record["attempts"] == 2
        assert record["history"] == [
            "queued", "running", "queued", "running", "done",
        ]
        # The retry resumed from the newest on-disk boundary, not cycle 0.
        assert record["resumed_from"] is not None
        assert record["resumed_from"] >= SEGMENT
        assert not response["from_cache"]
    finally:
        service.stop()
        thread.join(timeout=15)
        assert not thread.is_alive()

    # Bit-identical to an uninterrupted, unsegmented in-process run.
    runner = ExperimentRunner(jobs=1, cache_dir=service_dir + "/refcache")
    (expected,) = runner.run_many([Job("mcf", SETUP, "rubix", REQUESTS, 1)])
    assert canonical(result_to_dict(expected)) == canonical(
        response["result"]
    )


def test_crash_without_snapshots_restarts_from_scratch(service_dir):
    """A worker killed before any boundary retries from cycle 0 (and the
    record says so: ``resumed_from`` stays None)."""
    service = SweepService(
        service_dir + "/z.sock",
        workers=1,
        requests=REQUESTS,
        cache_dir=service_dir + "/cache",
        poll_interval=0.02,
    )
    thread = threading.Thread(target=service.run, daemon=True)
    thread.start()
    assert service.wait_ready(10)
    try:
        # No segment_cycles: the job never snapshots, so the kill always
        # lands pre-boundary.
        job = Job("xz", SETUP, "rubix", REQUESTS, 3)
        with SweepClient(service.socket_path) as client:
            (job_id,) = client.submit([job])
            deadline = CLOCK.now() + 120.0
            pid = None
            while CLOCK.now() < deadline:
                (record,) = client.status(job_id)
                if record["state"] == "running" and record["worker_pid"]:
                    pid = record["worker_pid"]
                    break
                CLOCK.sleep(0.01)
            assert pid is not None
            os.kill(pid, signal.SIGKILL)
            response = client.result(job_id, wait=True, timeout=240)
            (record,) = client.status(job_id)
        assert record["state"] == "done"
        assert record["attempts"] == 2
        assert record["resumed_from"] is None
    finally:
        service.stop()
        thread.join(timeout=15)

    runner = ExperimentRunner(jobs=1, cache_dir=service_dir + "/refcache")
    (expected,) = runner.run_many([job])
    assert canonical(result_to_dict(expected)) == canonical(
        response["result"]
    )


def test_repeated_crashes_exhaust_retries_into_failed(service_dir):
    """A job whose worker dies more than ``max_retries + 1`` times lands
    in ``failed`` with the crash reason recorded."""
    service = SweepService(
        service_dir + "/f.sock",
        workers=1,
        requests=REQUESTS,
        cache_dir=service_dir + "/cache",
        poll_interval=0.02,
        max_retries=1,
    )
    thread = threading.Thread(target=service.run, daemon=True)
    thread.start()
    assert service.wait_ready(10)
    try:
        job = Job("mcf", SETUP, "rubix", REQUESTS, 5)
        with SweepClient(service.socket_path) as client:
            (job_id,) = client.submit([job])
            kills = 0
            deadline = CLOCK.now() + 240.0
            while kills < 2 and CLOCK.now() < deadline:
                (record,) = client.status(job_id)
                if record["state"] in ("done", "failed"):
                    break
                if (
                    record["state"] == "running"
                    and record["worker_pid"]
                    and record["attempts"] == kills + 1
                ):
                    os.kill(record["worker_pid"], signal.SIGKILL)
                    kills += 1
                CLOCK.sleep(0.01)
            assert kills == 2
            with pytest.raises(Exception, match="failed"):
                client.result(job_id, wait=True, timeout=60)
            (record,) = client.status(job_id)
        assert record["state"] == "failed"
        assert record["attempts"] == 2
        assert "exit code" in record["error"]
    finally:
        service.stop()
        thread.join(timeout=15)
