"""Tests for the first-order analytical cost models."""

import pytest

from repro.analysis.model import (
    autorfm_alert_rate,
    autorfm_expected_delay,
    autorfm_saum_duty,
    rfm_bank_overhead,
)
from repro.sim.config import SystemConfig


class TestRfmOverhead:
    def test_no_overhead_below_threshold(self):
        # Banks doing fewer ACTs per tREFI than RFMTH never trigger RFM
        # (REF resets RAA) — the paper's RFM-32 observation.
        assert rfm_bank_overhead(27.0, 32) == 0.0

    def test_known_value(self):
        # 28 ACTs/tREFI at RFMTH 4: 6 RFMs x 205 ns per 3900 ns = 31.5 %.
        assert rfm_bank_overhead(28.0, 4) == pytest.approx(0.315, abs=0.01)

    def test_monotone_in_rate_and_threshold(self):
        assert rfm_bank_overhead(30, 4) > rfm_bank_overhead(20, 4)
        assert rfm_bank_overhead(30, 4) > rfm_bank_overhead(30, 8)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            rfm_bank_overhead(10, 0)
        with pytest.raises(ValueError):
            rfm_bank_overhead(-1, 4)


class TestAutoRfmModels:
    def test_saum_duty_known_value(self):
        # 28 ACTs/tREFI, TH 4: 7 mitigations x 192 ns / 3900 ns = 34.5 %.
        assert autorfm_saum_duty(28.0, 4) == pytest.approx(0.345, abs=0.01)

    def test_duty_caps_at_one(self):
        assert autorfm_saum_duty(10_000.0, 4) == 1.0

    def test_alert_rate_dilutes_by_subarrays(self):
        rate_256 = autorfm_alert_rate(28.0, 4, 256)
        rate_32 = autorfm_alert_rate(28.0, 4, 32)
        assert rate_32 == pytest.approx(8 * rate_256)
        # ~0.13 % at the Table IV operating point — the right regime
        # (the paper's 0.22 % includes Zen-leakage residue).
        assert 0.0005 < rate_256 < 0.005

    def test_expected_delay_small_at_paper_point(self):
        config = SystemConfig()
        delay = autorfm_expected_delay(28.0, 4, config)
        assert delay < 5.0  # ~1 cycle per ACT: why AutoRFM is cheap

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            autorfm_saum_duty(10, 0)
        with pytest.raises(ValueError):
            autorfm_alert_rate(10, 4, 0)


class TestModelVsPaper:
    def test_rfm_curve_shape_matches_fig3(self):
        """The model reproduces Fig. 3's decay using Table V's mean rate."""
        mean_rate = 26.0
        overheads = {th: rfm_bank_overhead(mean_rate, th) for th in (4, 8, 16, 32)}
        assert overheads[4] > 0.25
        assert overheads[8] < overheads[4] / 2
        assert overheads[32] == 0.0

    def test_autorfm_vs_rfm_gap(self):
        """At threshold 4 the model says AutoRFM's per-ACT cost is two
        orders of magnitude below RFM's bank overhead — the paper's point."""
        config = SystemConfig()
        rfm = rfm_bank_overhead(28.0, 4)
        auto_delay_fraction = autorfm_expected_delay(28.0, 4, config) / (
            config.timing.trefi / 28.0
        )
        assert rfm / max(auto_delay_fraction, 1e-9) > 50