"""Property-based fuzzing of the full memory system.

Hypothesis generates arbitrary request streams (addresses anywhere in
memory, random write mix, random burstiness) and we assert the system-level
invariants that no unit test pins down individually:

* every read completes and every core finishes (no lost wakeups/deadlocks);
* the command stream passes the independent timing audit;
* simulation is bit-identical when repeated;
* conservation: requests in == row hits + activations (reads+writes)."""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.sim.cmdlog import CommandLog
from repro.sim.config import SystemConfig
from repro.workloads.trace import Trace

FUZZ_CONFIG = SystemConfig(
    num_cores=2,
    num_subchannels=2,
    banks_per_subchannel=4,
    rows_per_bank=4096,
    subarrays_per_bank=16,
)

request_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),  # gap
        st.integers(min_value=0, max_value=FUZZ_CONFIG.total_lines - 1),
        st.booleans(),
    ),
    min_size=1,
    max_size=120,
)

setups = st.sampled_from(
    [
        MitigationSetup("none"),
        MitigationSetup("rfm", threshold=4),
        MitigationSetup("autorfm", threshold=4, policy="fractal"),
        MitigationSetup("autorfm", threshold=2, policy="recursive"),
        MitigationSetup("autorfm", threshold=4, policy="rowswap"),
        MitigationSetup("smd", threshold=3),
        MitigationSetup("prac", prac_trh_d=60),
    ]
)


def traces_from(requests, second_offset):
    first = Trace(
        gaps=[g for g, _, _ in requests],
        addrs=[a for _, a, _ in requests],
        writes=[w for _, _, w in requests],
    )
    second = Trace(
        gaps=[g for g, _, _ in requests],
        addrs=[(a + second_offset) % FUZZ_CONFIG.total_lines
               for _, a, _ in requests],
        writes=[not w for _, _, w in requests],
    )
    return [first, second]


class TestFuzzMemorySystem:
    @given(requests=request_lists, setup=setups,
           mapping=st.sampled_from(["zen", "rubix"]))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_invariants_hold_for_arbitrary_streams(self, requests, setup, mapping):
        log = CommandLog()
        traces = traces_from(requests, second_offset=977)
        result = simulate(
            traces, setup, FUZZ_CONFIG, mapping, seed=3, command_log=log,
            max_events=2_000_000,
        )
        stats = result.stats

        # Completion: all requests serviced, both cores finished.
        assert stats.total_memory_requests == 2 * len(requests)
        total_serviced = sum(b.reads + b.writes for b in stats.banks)
        assert total_serviced == 2 * len(requests)
        # Conservation: each serviced request was a hit or caused an ACT.
        assert stats.total_row_hits + stats.total_activations >= total_serviced
        # Timing audit (t_M follows the policy: a row swap locks 16x tRC).
        tm = 0
        if setup.policy == "rowswap":
            tm = 16 * FUZZ_CONFIG.timing.trc
        violations = log.verify(FUZZ_CONFIG, tm_cycles=tm)
        assert violations == [], violations[:3]

    @given(requests=request_lists)
    @settings(max_examples=15, deadline=None)
    def test_bit_identical_reruns(self, requests):
        traces = traces_from(requests, second_offset=501)
        setup = MitigationSetup("autorfm", threshold=4)

        def run():
            result = simulate(traces, setup, FUZZ_CONFIG, "rubix", seed=9)
            return (
                result.stats.cycles,
                result.stats.total_activations,
                result.stats.total_alerts,
                result.stats.total_mitigations,
                [c.finish_cycle for c in result.stats.cores],
            )

        assert run() == run()

    @given(
        requests=request_lists,
        page_policy=st.sampled_from(["closed", "open"]),
        refresh_mode=st.sampled_from(["all_bank", "same_bank"]),
        write_drain=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_config_matrix_never_deadlocks(
        self, requests, page_policy, refresh_mode, write_drain
    ):
        config = dataclasses.replace(
            FUZZ_CONFIG,
            page_policy=page_policy,
            refresh_mode=refresh_mode,
            write_drain=write_drain,
        )
        traces = traces_from(requests, second_offset=123)
        result = simulate(
            traces,
            MitigationSetup("autorfm", threshold=4),
            config,
            "zen",
            max_events=2_000_000,
        )
        assert result.stats.total_memory_requests == 2 * len(requests)