"""Tests for the tracker storage-vs-threshold design-space analysis."""

import pytest

from repro.analysis.tradeoffs import (
    TrackerPoint,
    cheapest_tracker_for,
    tracker_tradeoffs,
)


class TestTrackerTradeoffs:
    def test_covers_the_zoo(self):
        names = {p.name for p in tracker_tradeoffs()}
        assert {"MINT", "PrIDE", "PARFM", "Mithril-32K", "Graphene-2K",
                "Hydra"} <= names

    def test_mint_is_the_smallest(self):
        points = tracker_tradeoffs()
        mint = next(p for p in points if p.name == "MINT")
        assert all(mint.storage_bits_per_bank <= p.storage_bits_per_bank
                   for p in points)
        assert mint.storage_bytes_per_bank <= 8  # a few bytes (Sec. VI-C)

    def test_mint_beats_pride_on_both_axes(self):
        # Section II-D / Appendix D: lower threshold AND lower storage.
        points = {p.name: p for p in tracker_tradeoffs()}
        assert points["MINT"].tolerated_trhd < points["PrIDE"].tolerated_trhd
        assert (
            points["MINT"].storage_bits_per_bank
            < points["PrIDE"].storage_bits_per_bank
        )

    def test_deterministic_trackers_pay_storage(self):
        points = {p.name: p for p in tracker_tradeoffs()}
        assert points["Mithril-32K"].storage_bits_per_bank > 100_000
        assert points["Mithril-32K"].deterministic

    def test_deterministic_floor_is_fm_bound(self):
        points = {p.name: p for p in tracker_tradeoffs()}
        assert points["Mithril-32K"].tolerated_trhd == 53

    def test_window_scales_probabilistic_thresholds(self):
        at4 = {p.name: p for p in tracker_tradeoffs(window=4)}
        at8 = {p.name: p for p in tracker_tradeoffs(window=8)}
        assert at8["MINT"].tolerated_trhd > at4["MINT"].tolerated_trhd

    def test_cheapest_for_sub100_is_mint(self):
        assert cheapest_tracker_for(100).name == "MINT"

    def test_cheapest_for_ultra_low_needs_counters(self):
        point = cheapest_tracker_for(60)
        assert point.deterministic

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            cheapest_tracker_for(10)

    def test_point_bytes_property(self):
        point = TrackerPoint("x", 32, 100, False)
        assert point.storage_bytes_per_bank == 4.0
