"""Tests for all-bank vs same-bank (REFsb) refresh."""

import dataclasses

import pytest

from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.sim.cmdlog import REF, CommandLog
from repro.sim.config import SystemConfig
from tests.test_system import make_traces


def sb_config(small_config):
    return dataclasses.replace(small_config, refresh_mode="same_bank")


class TestSameBankRefresh:
    def test_timing_constants(self):
        timing = SystemConfig().timing
        assert timing.trfc_sb < timing.trfc
        assert timing.trfc_sb == 520  # 130 ns at 4 GHz

    def test_validation(self, small_config):
        bad = dataclasses.replace(small_config, refresh_mode="rolling")
        with pytest.raises(ValueError, match="refresh_mode"):
            bad.validate()

    def test_each_bank_refreshed_once_per_trefi(self, small_config):
        config = sb_config(small_config)
        log = CommandLog()
        traces = make_traces(config, n=600)
        result = simulate(
            traces, MitigationSetup("none"), config, "zen", command_log=log
        )
        refs = log.of_kind(REF)
        assert refs
        # Per bank, consecutive REFsb commands are ~tREFI apart.
        by_bank = {}
        for r in refs:
            by_bank.setdefault(r.bank, []).append(r.time)
        for times in by_bank.values():
            for a, b in zip(times, times[1:]):
                assert abs((b - a) - config.timing.trefi) <= config.num_banks

    def test_refsb_commands_are_staggered(self, small_config):
        config = sb_config(small_config)
        log = CommandLog()
        traces = make_traces(config, n=400)
        simulate(traces, MitigationSetup("none"), config, "zen", command_log=log)
        refs = log.of_kind(REF)
        times_sc0 = [r.time for r in refs if r.bank < 4][:4]
        assert len(set(times_sc0)) == len(times_sc0)  # never simultaneous

    def test_timing_audit_clean(self, small_config):
        config = sb_config(small_config)
        log = CommandLog()
        traces = make_traces(config, n=600)
        simulate(
            traces,
            MitigationSetup("autorfm", threshold=4),
            config,
            "rubix",
            command_log=log,
        )
        assert log.verify(config) == []

    def test_refsb_reduces_refresh_stall(self, small_config):
        """The whole point of REFsb: banks are blocked for tRFCsb one at a
        time rather than tRFC all at once, so throughput improves."""
        traces = make_traces(small_config, n=1200)
        ab = simulate(traces, MitigationSetup("none"), small_config, "zen")
        sb = simulate(
            traces, MitigationSetup("none"), sb_config(small_config), "zen"
        )
        assert sb.stats.weighted_speedup(ab.stats) > 1.0

    def test_rfm_works_with_refsb(self, small_config):
        config = sb_config(small_config)
        traces = make_traces(config, n=800)
        result = simulate(
            traces, MitigationSetup("rfm", threshold=4), config, "zen"
        )
        assert result.stats.total_rfm_commands > 0
