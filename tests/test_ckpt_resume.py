"""Segment-resumable execution under the parallel experiment runner.

Simulates the operational story end to end: a sweep runs in checkpointed
segments, gets killed mid-flight (modelled by deleting its result entry so
only segment snapshots survive), and a ``resume=True`` re-invocation picks
up from the last boundary — producing bit-identical results, verified via
the runner's ckpt profile counters. Also covers the cache size bound
(``REPRO_CACHE_MAX_MB`` / LRU pruning).
"""

import json
import os

import pytest

from repro.analysis.runner import (
    ExperimentRunner,
    Job,
    ResultCache,
    cache_size_limit_bytes,
    result_to_dict,
)
from repro.mc.setup import MitigationSetup
from repro.obs import ObsConfig

REQUESTS = 400
SEGMENT = 8000

SETUP = MitigationSetup(mechanism="autorfm", tracker="mint", threshold=4)


def _stats_json(result):
    return json.dumps(result_to_dict(result), sort_keys=True)


def make_runner(small_config, tmp_path, jobs=1):
    return ExperimentRunner(config=small_config, jobs=jobs,
                            cache_dir=str(tmp_path / "cache"),
                            requests=REQUESTS)


class TestSegmentedExecution:
    def test_segmented_equals_straight(self, small_config, tmp_path):
        runner = make_runner(small_config, tmp_path)
        straight = runner.run(Job("mcf", SETUP, "rubix", seed=3))
        runner.cache.clear()
        segmented = runner.run(
            Job("mcf", SETUP, "rubix", seed=3, segment_cycles=SEGMENT)
        )
        assert _stats_json(straight) == _stats_json(segmented)
        assert segmented.ckpt["captured"] >= 1
        assert segmented.ckpt["resumed_from"] is None

    def test_segment_cycles_excluded_from_cache_key(self, small_config,
                                                    tmp_path):
        runner = make_runner(small_config, tmp_path)
        plain = Job("mcf", SETUP, "rubix", seed=3)
        segmented = Job("mcf", SETUP, "rubix", seed=3,
                        segment_cycles=SEGMENT)
        assert runner.key_for(plain) == runner.key_for(segmented)

    def test_segment_cycles_validated(self):
        with pytest.raises(ValueError):
            Job("mcf", SETUP, "rubix", segment_cycles=0)

    def test_snapshots_land_in_cache_dir(self, small_config, tmp_path):
        runner = make_runner(small_config, tmp_path)
        job = Job("mcf", SETUP, "rubix", seed=3, segment_cycles=SEGMENT)
        result = runner.run(job)
        key = runner.key_for(job)
        boundaries = runner.cache.snapshot_boundaries(key)
        assert len(boundaries) == result.ckpt["captured"]
        assert boundaries == sorted(boundaries)

    def test_cached_result_has_no_ckpt_leak(self, small_config, tmp_path):
        # ckpt bookkeeping is wall-clock-adjacent provenance; the cache
        # entry for a segmented run must be byte-identical to a straight
        # run's entry.
        runner = make_runner(small_config, tmp_path)
        job = Job("mcf", SETUP, "rubix", seed=3, segment_cycles=SEGMENT)
        runner.run(job)
        cached = runner.cache.get(runner.key_for(job))
        assert cached.ckpt is None


class TestKillAndResume:
    def _kill(self, runner, job):
        """Model a mid-flight kill: the result entry never landed."""
        os.unlink(runner.cache._path(runner.key_for(job)))

    def test_resume_from_last_segment(self, small_config, tmp_path):
        runner = make_runner(small_config, tmp_path)
        job = Job("mcf", SETUP, "rubix", seed=3, segment_cycles=SEGMENT)
        first = runner.run(job)
        assert first.ckpt["captured"] >= 2
        self._kill(runner, job)

        resumed = runner.run(job, resume=True)
        assert _stats_json(first) == _stats_json(resumed)
        # Resumed from the newest boundary, so only the tail re-executed.
        last = runner.cache.snapshot_boundaries(runner.key_for(job))[-1]
        assert resumed.ckpt["resumed_from"] == last
        assert resumed.ckpt["captured"] < first.ckpt["captured"]
        assert runner.profile.counts["ckpt_resumes"] == 1

    def test_resume_with_observability(self, small_config, tmp_path):
        runner = make_runner(small_config, tmp_path)
        job = Job("mcf", SETUP, "rubix", seed=3, segment_cycles=SEGMENT,
                  obs=ObsConfig(metrics=True, trace=True))
        first = runner.run(job)
        self._kill(runner, job)
        resumed = runner.run(job, resume=True)
        assert _stats_json(first) == _stats_json(resumed)
        assert json.dumps(first.obs.metrics, sort_keys=True) == \
            json.dumps(resumed.obs.metrics, sort_keys=True)
        assert first.obs.trace_jsonl == resumed.obs.trace_jsonl

    def test_resume_under_parallel_workers(self, small_config, tmp_path):
        runner = make_runner(small_config, tmp_path, jobs=2)
        jobs = [Job("mcf", SETUP, "rubix", seed=s, segment_cycles=SEGMENT)
                for s in (3, 4)]
        first = runner.run_many(jobs)
        for job in jobs:
            self._kill(runner, job)
        resumed = runner.run_many(jobs, resume=True)
        assert [_stats_json(r) for r in first] == \
            [_stats_json(r) for r in resumed]
        assert all(r.ckpt["resumed_from"] is not None for r in resumed)

    def test_corrupt_last_segment_falls_back(self, small_config, tmp_path):
        runner = make_runner(small_config, tmp_path)
        job = Job("mcf", SETUP, "rubix", seed=3, segment_cycles=SEGMENT)
        first = runner.run(job)
        self._kill(runner, job)
        key = runner.key_for(job)
        boundaries = runner.cache.snapshot_boundaries(key)
        assert len(boundaries) >= 2
        # Truncate the newest snapshot (crash mid-write of a non-atomic
        # copy, a flipped sector, ...): resume must use the one before it.
        newest = runner.cache.snapshot_path(key, boundaries[-1])
        with open(newest, "r+b") as handle:
            handle.truncate(20)
        resumed = runner.run(job, resume=True)
        assert _stats_json(first) == _stats_json(resumed)
        assert resumed.ckpt["resumed_from"] == boundaries[-2]

    def test_resume_with_no_snapshots_starts_fresh(self, small_config,
                                                   tmp_path):
        runner = make_runner(small_config, tmp_path)
        job = Job("mcf", SETUP, "rubix", seed=3, segment_cycles=SEGMENT)
        result = runner.run(job, resume=True)
        assert result.ckpt["resumed_from"] is None
        assert result.ckpt["captured"] >= 1


class TestCacheBounding:
    def test_stats_counts_results_and_snapshots(self, small_config, tmp_path):
        runner = make_runner(small_config, tmp_path)
        runner.run(Job("mcf", SETUP, "rubix", seed=3,
                       segment_cycles=SEGMENT))
        stats = runner.cache.stats()
        assert stats["results"] == 1
        assert stats["snapshots"] >= 1
        assert stats["total_bytes"] == (
            stats["result_bytes"] + stats["snapshot_bytes"]
        )

    def test_prune_evicts_lru_first(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        old = os.path.join(str(tmp_path), "old.json")
        new = os.path.join(str(tmp_path), "new.json")
        for path, age in ((old, 1000), (new, 10)):
            with open(path, "w") as handle:
                handle.write("x" * 100)
            stamp = os.stat(path).st_mtime - age
            os.utime(path, (stamp, stamp))
        outcome = cache.prune(150)
        assert outcome["removed"] == 1
        assert not os.path.exists(old)
        assert os.path.exists(new)

    def test_prune_to_limit_reads_env(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path))
        with open(os.path.join(str(tmp_path), "entry.json"), "w") as handle:
            handle.write("x" * 2048)
        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        assert cache.prune_to_limit() is None
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0")
        outcome = cache.prune_to_limit()
        assert outcome["removed"] == 1
        assert cache.stats()["total_bytes"] == 0

    def test_cache_size_limit_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        assert cache_size_limit_bytes() is None
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1.5")
        assert cache_size_limit_bytes() == int(1.5 * 1024 * 1024)
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "junk")
        with pytest.raises(ValueError):
            cache_size_limit_bytes()

    def test_run_many_applies_budget(self, small_config, tmp_path,
                                     monkeypatch):
        runner = make_runner(small_config, tmp_path)
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0")
        runner.run(Job("mcf", SETUP, "rubix", seed=3,
                       segment_cycles=SEGMENT))
        # The batch-end auto-prune applied the zero budget.
        assert runner.cache.stats()["total_bytes"] == 0

    def test_clear_removes_snapshots_too(self, small_config, tmp_path):
        runner = make_runner(small_config, tmp_path)
        runner.run(Job("mcf", SETUP, "rubix", seed=3,
                       segment_cycles=SEGMENT))
        removed = runner.cache.clear()
        assert removed >= 2
        stats = runner.cache.stats()
        assert stats["results"] == 0 and stats["snapshots"] == 0
