"""Tests for repro.sim.config: timings, geometry, validation."""

import dataclasses

import pytest

from repro.sim.config import (
    CYCLES_PER_NS,
    DramTiming,
    SystemConfig,
    cycles_to_ns,
    ns_to_cycles,
)


class TestCycleConversion:
    def test_table1_timings_are_exact_integers(self):
        timing = DramTiming()
        assert timing.trcd == 48
        assert timing.trp == 48
        assert timing.tras == 144
        assert timing.trc == 192
        assert timing.trefi == 15_600
        assert timing.trfc == 1640
        assert timing.trfm == 820

    def test_trc_is_tras_plus_trp(self):
        timing = DramTiming()
        assert timing.trc == timing.tras + timing.trp

    def test_round_trip(self):
        assert cycles_to_ns(ns_to_cycles(48.0)) == 48.0

    def test_fractional_ns_rounds(self):
        # PRAC's scaled tRC: 52.8 ns -> 211 cycles.
        assert ns_to_cycles(52.8) == 211

    def test_cycles_per_ns_is_four(self):
        assert CYCLES_PER_NS == 4


class TestDramTimingScaled:
    def test_scaled_trc(self):
        timing = DramTiming().scaled(trc_factor=1.10)
        assert timing.trc_ns == pytest.approx(52.8)
        assert timing.trp_ns == 12.0  # untouched

    def test_scaled_is_new_object(self):
        base = DramTiming()
        assert base.scaled(trc_factor=2.0) is not base
        assert base.trc_ns == 48.0


class TestSystemConfigGeometry:
    def test_table4_defaults(self):
        config = SystemConfig()
        assert config.num_banks == 64
        assert config.rows_per_bank == 128 * 1024
        assert config.subarrays_per_bank == 256
        assert config.rows_per_subarray == 512
        assert config.lines_per_row == 64
        assert config.capacity_bytes == 32 * 1024**3

    def test_total_lines(self):
        config = SystemConfig()
        assert config.total_lines == 2**29  # 32 GB / 64 B

    def test_subarray_of_row(self):
        config = SystemConfig()
        assert config.subarray_of_row(0) == 0
        assert config.subarray_of_row(511) == 0
        assert config.subarray_of_row(512) == 1
        assert config.subarray_of_row(128 * 1024 - 1) == 255

    def test_subarray_of_row_out_of_range(self):
        config = SystemConfig()
        with pytest.raises(ValueError):
            config.subarray_of_row(128 * 1024)
        with pytest.raises(ValueError):
            config.subarray_of_row(-1)

    def test_validate_accepts_default(self):
        SystemConfig().validate()

    def test_validate_rejects_misaligned_subarrays(self):
        config = dataclasses.replace(SystemConfig(), subarrays_per_bank=1000)
        with pytest.raises(ValueError, match="subarrays"):
            config.validate()

    def test_validate_rejects_bad_row_bytes(self):
        config = dataclasses.replace(SystemConfig(), row_bytes=100)
        with pytest.raises(ValueError):
            config.validate()

    def test_validate_rejects_zero_cores(self):
        config = dataclasses.replace(SystemConfig(), num_cores=0)
        with pytest.raises(ValueError):
            config.validate()

    def test_small_config_consistent(self, small_config):
        small_config.validate()
        assert small_config.rows_per_subarray == 256
        assert small_config.num_banks == 8
