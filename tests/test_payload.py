"""The attack-payload DSL: per-stage unit tests + the differential battery.

Four layers, mirroring the pipeline's promises:

* **Stages** — parse (line-accurate errors), resolve (strict binding),
  unroll (exact activation budgets, truncation semantics, guards), and
  compile (both replay forms) each behave per their contracts.
* **Legacy pins** — every generator in :mod:`repro.workloads.attacks` is
  pinned exactly equal to its DSL twin in the corpus, and
  :func:`repro.workloads.adversarial.hammer_trace` (now routed through
  the DSL) is pinned byte-identical to its historical construction.
* **Corpus** — the shipped manifest verifies clean, and every scenario
  replays *exactly* equally through the scalar Monte-Carlo oracle and
  the numpy batch kernels, across trackers; compiled traces replay
  bit-identically through both timing backends (same SimStats, same
  CommandLog).
* **Integration** — scenario identity (name, version, params) enters the
  security cache key; ``threshold_sweep`` accepts scenarios; the
  ``repro payload`` CLI honours its exit contract.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import pytest

from repro.cpu.system import build_mapping, simulate
from repro.mc.setup import MitigationSetup
from repro.payload import (
    CompiledPayload,
    PayloadError,
    compile_payload,
    compile_scenario,
    count_activations,
    load_scenario,
    normalize,
    parse,
    parse_params,
    resolve,
    scenario_names,
    scenario_source,
    unroll,
    verify_corpus,
)
from repro.payload.nodes import Instr, Num, format_program
from repro.security.kernels import (
    policy_spec_from_string,
    run_attack_batch,
    tracker_spec_from_strings,
)
from repro.sim.cmdlog import CommandLog
from repro.workloads.attacks import (
    double_sided,
    half_double,
    round_robin_attack,
    single_sided,
)


# ----------------------------------------------------------------------
# Stage 1: parse
# ----------------------------------------------------------------------
class TestParse:
    def test_simple_program_structure(self):
        program = parse("act 5\npre\nnop 3\nref\nrfm\nsync_ref\n")
        ops = [s.op for s in program.body]
        assert ops == ["act", "pre", "nop", "ref", "rfm", "sync_ref"]
        assert program.body[0].arg == Num(5)
        assert program.body[2].arg == Num(3)

    def test_loops_and_placeholders(self):
        program = parse(
            "for *:\n"
            "    act {base}\n"
            "    for d in {n}:\n"
            "        act {base}+2*d\n"
        )
        outer = program.body[0]
        assert outer.count is None
        inner = outer.body[1]
        assert inner.var == "d"
        assert program.params() == ("base", "n")

    def test_leading_comments_preserved(self):
        text = "# one\n# two\nact 1\n"
        program = parse(text)
        assert program.comments == ("one", "two")
        assert normalize(text) == text

    @pytest.mark.parametrize("bad,line", [
        ("hammer 5\n", 1),
        ("act\n", 1),
        ("pre 5\n", 1),
        ("act 1\nsync_ref 2\n", 2),
        ("for x in 3:\n    act y\n", 2),
        ("for 2:\n", 1),
        ("act (1\n", 1),
        ("act 1 )\n", 1),
        ("\tact 1\n", 1),
        ("act 1\n   act 2\n", 2),
        ("for x in 3:\n    for x in 2:\n        act x\n", 2),
    ])
    def test_errors_carry_the_offending_line(self, bad, line):
        with pytest.raises(PayloadError) as err:
            parse(bad)
        assert err.value.line == line
        assert f"line {line}:" in str(err.value)

    def test_unbound_identifier_suggests_placeholder(self):
        with pytest.raises(PayloadError, match=r"did you mean \{row\}"):
            parse("act row\n")

    def test_normalize_is_idempotent_on_the_corpus(self):
        for name in scenario_names():
            source = scenario_source(name)
            assert normalize(normalize(source)) == normalize(source)

    def test_parse_params_helper(self):
        assert parse_params(["a=1", "b = -2"]) == {"a": 1, "b": -2}
        with pytest.raises(PayloadError):
            parse_params(["a"])
        with pytest.raises(PayloadError):
            parse_params(["a=x"])


# ----------------------------------------------------------------------
# Stage 2: resolve
# ----------------------------------------------------------------------
class TestResolve:
    def test_binds_placeholders(self):
        program = resolve(parse("act {row}+1\n"), {"row": 9})
        assert program.body[0].arg.format() == "9+1"
        assert program.params() == ()

    def test_missing_parameter_names_offender_and_line(self):
        with pytest.raises(PayloadError) as err:
            resolve(parse("pre\nact {row}\n"), {})
        assert "row" in str(err.value)
        assert err.value.line == 2

    def test_unused_parameter_is_an_error(self):
        with pytest.raises(PayloadError, match="unused parameter"):
            resolve(parse("act {row}\n"), {"row": 1, "victim": 2})

    def test_non_integer_value_rejected(self):
        for bad in ("5", 5.0, True):
            with pytest.raises(PayloadError):
                resolve(parse("act {row}\n"), {"row": bad})


# ----------------------------------------------------------------------
# Stage 3: unroll
# ----------------------------------------------------------------------
class TestUnroll:
    def test_finite_program_expands_fully(self):
        program = parse("for i in 3:\n    act 10+i\n    pre\n")
        instrs = unroll(program, 100)
        assert [i.format() for i in instrs] == [
            "act 10", "pre", "act 11", "pre", "act 12", "pre",
        ]

    def test_budget_cuts_exactly_at_the_last_act(self):
        # An odd budget cuts the two-instruction loop body mid-iteration:
        # nothing after act #budget may leak into the expansion.
        program = parse("for *:\n    act 1\n    pre\n    nop 7\n")
        instrs = unroll(program, 3)
        assert sum(1 for i in instrs if i.op == "act") == 3
        assert instrs[-1].op == "act"

    def test_budget_zero_is_empty(self):
        assert unroll(parse("for *:\n    act 1\n"), 0) == []

    def test_negative_budget_rejected(self):
        with pytest.raises(PayloadError):
            unroll(parse("act 1\n"), -1)

    def test_unresolved_program_rejected(self):
        with pytest.raises(PayloadError, match="missing"):
            unroll(parse("act {row}\n"), 5)

    def test_unbounded_loop_without_acts_rejected(self):
        with pytest.raises(PayloadError, match="no activations"):
            unroll(parse("for *:\n    pre\n"), 5)

    @pytest.mark.parametrize("bad", [
        "act 1-2\n",                      # negative row
        "nop 1-5\n",                      # negative idle count
        "for 1-3:\n    act 1\n",          # negative trip count
    ])
    def test_negative_evaluations_rejected(self, bad):
        with pytest.raises(PayloadError):
            unroll(parse(bad), 5)

    def test_instruction_cap_guards_degenerate_payloads(self):
        program = parse("for *:\n    for 100000:\n        pre\n    act 1\n")
        with pytest.raises(PayloadError, match="instruction cap"):
            unroll(program, 2)

    def test_zero_trip_counted_loop_is_skipped(self):
        # Regression (found by the property fuzzer): a zero-trip counted
        # loop used to crash unbinding a variable it never bound.
        program = parse("for i in 0:\n    act i\nact 9\n")
        assert compile_payload(unroll(program, 10)).rows == [9]

    def test_count_activations_matches_unroll(self):
        finite = resolve(
            parse("for i in {n}:\n    act i\n    act i+100\n"), {"n": 5}
        )
        assert count_activations(finite) == 10
        assert count_activations(finite, 4) == 4
        assert len(unroll(finite, 4)) >= 4
        unbounded = parse("for *:\n    act 1\n")
        assert count_activations(unbounded, 7) == 7
        with pytest.raises(PayloadError, match="unbounded"):
            count_activations(unbounded)


# ----------------------------------------------------------------------
# Stage 4: compile (+ to_trace)
# ----------------------------------------------------------------------
class TestCompile:
    def test_rows_are_the_act_stream(self):
        compiled = compile_payload(
            unroll(parse("act 5\npre\nnop 2\nact 9\n"), 10), name="t"
        )
        assert compiled.rows == [5, 9]
        assert compiled.acts == 2
        assert compiled.op_counts() == {"act": 2, "pre": 1, "nop": 1}

    def test_rows_digest_is_the_sha256_of_the_joined_rows(self):
        compiled = CompiledPayload(name="x", instrs=(), rows=[1, 2, 3])
        assert compiled.rows_digest() == hashlib.sha256(
            b"1,2,3"
        ).hexdigest()

    def test_compile_rejects_unresolved_act(self):
        from repro.payload.nodes import Param

        with pytest.raises(PayloadError):
            compile_payload([Instr("act", Param("row"), 1)])

    def test_to_trace_layout(self, small_config):
        mapping = build_mapping("zen", small_config)
        compiled = compile_payload(
            unroll(parse("nop 3\nact 10\npre\nref\nact 20\nnop 5\n"), 10),
            name="layout",
        )
        trace = compiled.to_trace(mapping, ref_gap=700)
        assert len(trace.addrs) == 2
        assert trace.gaps == [3, 700]
        assert trace.tail_instructions == 5
        assert trace.writes == [False, False]
        from repro.mapping.base import LineLocation

        assert trace.addrs[0] == mapping.line_for(
            LineLocation(subchannel=0, bank=0, row=10, column=0)
        )


# ----------------------------------------------------------------------
# Legacy generators pinned equal to their DSL twins
# ----------------------------------------------------------------------
ODD_ACTS = 101  # odd on purpose: exercises mid-iteration truncation


class TestLegacyTwins:
    def test_round_robin_twin(self):
        rows = [70_000 + 10 * i for i in range(4)]
        compiled = compile_scenario(
            "abcd_k", params={"base": 70_000, "rows": 4, "stride": 10},
            acts=ODD_ACTS,
        )
        assert compiled.rows == round_robin_attack(rows, ODD_ACTS)

    def test_single_sided_twin(self):
        compiled = compile_scenario(
            "single_sided", params={"row": 1234}, acts=ODD_ACTS
        )
        assert compiled.rows == single_sided(1234, ODD_ACTS)

    def test_double_sided_twin(self):
        compiled = compile_scenario(
            "double_sided", params={"victim": 5000}, acts=ODD_ACTS
        )
        assert compiled.rows == double_sided(5000, ODD_ACTS)

    def test_half_double_twin(self):
        compiled = compile_scenario(
            "half_double", params={"far": 70_000, "decoys": 8},
            acts=ODD_ACTS,
        )
        assert compiled.rows == half_double(70_000, ODD_ACTS, decoys=8)

    @pytest.mark.parametrize("rows,requests,gap,bank", [
        ((1000, 1002), 7, 0, 0),
        ((1000, 1002, 1004), 10, 5, 3),
        ((42,), 4, 700, 1),
        ((1, 2), 0, 0, 0),
    ])
    def test_hammer_trace_byte_identical_to_legacy(
        self, small_config, rows, requests, gap, bank
    ):
        """The DSL-routed hammer_trace reproduces the historical layout:
        round-robin line addresses, a ``gap`` of idle instructions before
        every request, and no tail."""
        from repro.workloads.adversarial import hammer_trace, lines_for_rows

        mapping = build_mapping("zen", small_config)
        trace = hammer_trace(
            mapping, list(rows), requests, bank=bank, gap=gap
        )
        lines = lines_for_rows(mapping, 0, bank, rows)
        assert trace.addrs == [lines[i % len(rows)] for i in range(requests)]
        assert trace.gaps == [gap] * requests
        assert trace.tail_instructions == 0
        assert trace.writes == [False] * requests


# ----------------------------------------------------------------------
# Corpus integrity
# ----------------------------------------------------------------------
class TestCorpus:
    def test_shipped_corpus_verifies_clean(self):
        assert verify_corpus() == []

    def test_every_scenario_is_fully_versioned(self):
        names = scenario_names()
        assert len(names) >= 10
        for name in names:
            s = load_scenario(name)
            assert s.version.count(".") == 2, name
            assert s.description and s.provenance, name
            assert len(s.source_sha256) == 64, name
            assert len(s.rows_sha256) == 64, name
            assert s.default_acts > 0, name

    def test_unknown_scenario_and_parameter_rejected(self):
        with pytest.raises(PayloadError, match="unknown scenario"):
            load_scenario("nope")
        with pytest.raises(PayloadError, match="does not take"):
            compile_scenario("single_sided", params={"victim": 1})

    def test_drift_is_detected(self, monkeypatch):
        """A tampered digest surfaces as a verify problem, not silence."""
        import repro.payload.corpus as corpus

        doc = corpus.load_manifest()
        doc["scenarios"]["single_sided"]["rows_sha256"] = "0" * 64
        monkeypatch.setattr(corpus, "load_manifest", lambda: doc)
        problems = corpus.verify_corpus()
        assert any(
            "single_sided" in p and "shape drift" in p for p in problems
        )

    def test_compile_scenario_is_deterministic(self):
        a = compile_scenario("rfm_dos", acts=123)
        b = compile_scenario("rfm_dos", acts=123)
        assert a.rows == b.rows
        assert a.rows_digest() == b.rows_digest()


# ----------------------------------------------------------------------
# Differential matrix: corpus x trackers x scalar-vs-numpy
# ----------------------------------------------------------------------
DIFF_TRACKERS = ("mint", "graphene", "para")
DIFF_ACTS = 250
DIFF_SEEDS = 3


@pytest.mark.parametrize("tracker", DIFF_TRACKERS)
@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_scenario_differential_scalar_vs_numpy(name, tracker):
    """Every corpus scenario replays exactly equally on both engines."""
    pattern = list(compile_scenario(name, acts=DIFF_ACTS).rows)
    assert len(pattern) == DIFF_ACTS
    window = 4
    kwargs = dict(
        window=window,
        seeds=DIFF_SEEDS,
        collect_pressure=True,
    )
    spec = tracker_spec_from_strings(tracker, window)
    policy = policy_spec_from_string("fractal")
    scalar = run_attack_batch(
        [pattern], spec, policy, backend="scalar", **kwargs
    )[0]
    vector = run_attack_batch(
        [pattern], spec, policy, backend="numpy", **kwargs
    )[0]
    assert len(scalar) == len(vector) == DIFF_SEEDS
    for s, v in zip(scalar, vector):
        assert v.max_pressure == s.max_pressure
        assert v.max_pressure_row == s.max_pressure_row
        assert v.activations == s.activations
        assert v.mitigations == s.mitigations
        assert v.victim_refreshes == s.victim_refreshes
        nonzero = {row: p for row, p in s.pressure.items() if p != 0.0}
        assert v.pressure == nonzero


# ----------------------------------------------------------------------
# Trace bit-identity: simulate(backend="batch") vs scalar
# ----------------------------------------------------------------------
#: Scenario + small-row parameter overrides that fit the small_config
#: geometry (4096 rows/bank); each is compiled to a timed trace and must
#: replay bit-identically on both timing backends.
TRACE_CASES = [
    ("single_sided", {"row": 1000}),
    ("double_sided", {"victim": 2000}),
    ("abcd_k", {"base": 512, "rows": 4, "stride": 10}),
    ("refresh_sync", {"victim": 300, "burst": 16, "quiet": 64}),
    ("rfm_dos", {"base": 100, "spread": 8}),
]

TRACE_SETUPS = [
    MitigationSetup("none"),
    MitigationSetup("autorfm", threshold=4, tracker="mint",
                    policy="fractal"),
]


@pytest.mark.parametrize("setup", TRACE_SETUPS,
                         ids=[s.mechanism for s in TRACE_SETUPS])
@pytest.mark.parametrize("name,params", TRACE_CASES,
                         ids=[n for n, _ in TRACE_CASES])
def test_compiled_trace_bit_identical_across_backends(
    small_config, name, params, setup
):
    mapping = build_mapping("zen", small_config)
    compiled = compile_scenario(name, params=params, acts=300)
    attacker = compiled.to_trace(mapping)
    traces = [attacker, attacker.sliced(0)]

    log_scalar = CommandLog()
    ref = simulate(
        traces, setup=setup, config=small_config, mapping="zen", seed=1,
        command_log=log_scalar, backend="scalar",
    )
    log_batch = CommandLog()
    got = simulate(
        traces, setup=setup, config=small_config, mapping="zen", seed=1,
        command_log=log_batch, backend="batch",
    )
    assert got.stats == ref.stats
    assert log_batch.records == log_scalar.records


# ----------------------------------------------------------------------
# Integration: cache key, threshold sweep, CLI
# ----------------------------------------------------------------------
class TestSecurityJobScenario:
    def test_version_is_autofilled_from_the_manifest(self):
        from repro.analysis.runner import SecurityJob

        job = SecurityJob(scenario="single_sided", acts=100)
        assert job.scenario_version == load_scenario("single_sided").version

    def test_wrong_version_assertion_rejected(self):
        from repro.analysis.runner import SecurityJob

        with pytest.raises(ValueError, match="version"):
            SecurityJob(scenario="single_sided", scenario_version="9.9.9")

    def test_undeclared_override_rejected(self):
        from repro.analysis.runner import SecurityJob

        with pytest.raises(ValueError, match="declares no parameter"):
            SecurityJob(
                scenario="single_sided", scenario_params={"victim": 1}
            )
        with pytest.raises(ValueError, match="require a scenario"):
            SecurityJob(scenario_params=(("row", 1),))

    def test_scenario_identity_enters_the_cache_key(self, monkeypatch):
        from repro.analysis.runner import SecurityJob, security_job_key

        base = SecurityJob(scenario="single_sided", acts=100)
        other_params = SecurityJob(
            scenario="single_sided", acts=100,
            scenario_params={"row": 9},
        )
        other_name = SecurityJob(scenario="double_sided", acts=100)
        keys = {
            security_job_key(base),
            security_job_key(other_params),
            security_job_key(other_name),
        }
        assert len(keys) == 3
        # A version bump alone must re-key (the same name+params answer
        # would otherwise come from entries computed against the old
        # payload).
        bumped = dataclasses.replace(base)
        object.__setattr__(bumped, "scenario_version", "2.0.0")
        assert security_job_key(bumped) != security_job_key(base)

    def test_scenario_less_jobs_keep_their_pre_corpus_hash(self):
        """The corpus fields must not invalidate existing cache entries."""
        from repro.analysis.runner import (
            CACHE_SCHEMA_VERSION,
            SecurityJob,
            security_job_key,
        )

        job = SecurityJob(attack="double_sided", rows=(70_000,), acts=100)
        fields = dataclasses.asdict(job)
        for dropped in ("backend", "scenario", "scenario_version",
                        "scenario_params"):
            fields.pop(dropped)
        canonical = json.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "kind": "security",
             "job": fields},
            sort_keys=True, separators=(",", ":"),
        )
        expected = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        assert security_job_key(job) == expected

    def test_runner_executes_and_caches_scenario_jobs(self, tmp_path):
        from repro.analysis.runner import ExperimentRunner, SecurityJob

        runner = ExperimentRunner(jobs=1, cache_dir=str(tmp_path))
        job = SecurityJob(
            scenario="double_sided", acts=200, seeds=2, window=4
        )
        first = runner.run_security(job)
        assert runner.cache_misses >= 1
        again = runner.run_security(job)
        assert runner.cache_hits >= 1
        assert [dataclasses.asdict(r) for r in again] == [
            dataclasses.asdict(r) for r in first
        ]
        # The cached replay equals a direct run over the compiled rows.
        direct = run_attack_batch(
            [list(compile_scenario("double_sided", acts=200).rows)],
            tracker_spec_from_strings("mint", 4),
            policy_spec_from_string("fractal"),
            window=4, seeds=2, collect_pressure=False,
        )[0]
        for got, want in zip(first, direct):
            assert got.max_pressure == want.max_pressure
            assert got.mitigations == want.mitigations


class TestThresholdSweepScenario:
    def test_sweep_accepts_scenarios(self):
        from repro.security.thresholds import threshold_sweep

        points = threshold_sweep(
            [4], seeds=2, acts=150, scenario="single_sided",
            scenario_params={"row": 9000},
        )
        (point,) = points
        assert point.window == 4 and point.acts == 150
        direct = run_attack_batch(
            [list(compile_scenario(
                "single_sided", params={"row": 9000}, acts=150
            ).rows)],
            tracker_spec_from_strings("mint", 4),
            policy_spec_from_string("fractal"),
            window=4, seeds=2, collect_pressure=False,
        )[0]
        assert point.max_pressure == max(r.max_pressure for r in direct)

    def test_params_without_scenario_rejected(self):
        from repro.security.thresholds import montecarlo_tolerated_threshold

        with pytest.raises(ValueError, match="requires a scenario"):
            montecarlo_tolerated_threshold(
                4, seeds=1, acts=10, scenario_params={"row": 1}
            )


class TestPayloadCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(["payload", *argv])

    def test_list_names_every_scenario(self, capsys):
        assert self.run_cli("list") == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_show_prints_the_source(self, capsys):
        assert self.run_cli("show", "single_sided") == 0
        out = capsys.readouterr().out
        assert "act {row}" in out and "v1" in out

    def test_compile_prints_shape_and_digest(self, capsys):
        assert self.run_cli(
            "compile", "single_sided", "--param", "row=7", "--acts", "5"
        ) == 0
        out = capsys.readouterr().out
        digest = compile_scenario(
            "single_sided", params={"row": 7}, acts=5
        ).rows_digest()
        assert "5 activations" in out
        assert digest in out

    def test_verify_passes_on_the_shipped_corpus(self, capsys):
        assert self.run_cli("verify") == 0
        assert "corpus OK" in capsys.readouterr().out

    def test_unknown_scenario_exits_2(self, capsys):
        assert self.run_cli("show", "nope") == 2
        assert "payload error" in capsys.readouterr().err

    def test_run_replays_through_the_engine(self, capsys, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert self.run_cli(
            "run", "single_sided", "--acts", "150", "--seeds", "2",
            "--param", "row=9000",
        ) == 0
        out = capsys.readouterr().out
        assert "worst pressure" in out and "2 seeds x 150 ACTs" in out
