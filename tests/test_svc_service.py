"""Live-daemon integration tests for the sweep service.

Each test starts a real :class:`~repro.svc.SweepService` on a Unix socket
in a background thread and talks to it through :class:`~repro.svc.
SweepClient` — the same path the CLI and CI service step use. The
differential tests compare daemon-served results against a fresh
in-process :class:`~repro.analysis.runner.ExperimentRunner` run with its
own isolated cache directory, byte-for-byte on the canonical JSON form.
"""

import json
import shutil
import tempfile
import threading

import pytest

from repro.analysis.runner import (
    ExperimentRunner,
    Job,
    SecurityJob,
    _security_results_to_dicts,
    result_to_dict,
)
from repro.cli import main
from repro.mc.setup import MitigationSetup
from repro.svc import (
    ServiceError,
    SweepClient,
    SweepService,
    daemon_available,
)

REQUESTS = 300
SETUP = MitigationSetup(mechanism="autorfm", tracker="mint", threshold=4)


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@pytest.fixture
def service_dir():
    """A *short* scratch path: Unix socket paths are length-limited, so
    pytest's deeply nested tmp_path is unusable here."""
    path = tempfile.mkdtemp(prefix="rsvc-", dir="/tmp")
    yield path
    shutil.rmtree(path, ignore_errors=True)


@pytest.fixture
def daemon(service_dir):
    """A live daemon on ``<service_dir>/s.sock`` with 2 workers."""
    service = SweepService(
        service_dir + "/s.sock",
        workers=2,
        requests=REQUESTS,
        cache_dir=service_dir + "/cache",
        poll_interval=0.02,
    )
    thread = threading.Thread(target=service.run, daemon=True)
    thread.start()
    assert service.wait_ready(10)
    yield service
    service.stop()
    thread.join(timeout=15)
    assert not thread.is_alive()


def in_process(jobs, service_dir):
    """The same jobs through the plain runner, in an isolated cache."""
    runner = ExperimentRunner(jobs=1, cache_dir=service_dir + "/refcache")
    return runner.run_many(jobs)


class TestServiceBatch:
    def test_three_job_batch_hit_cancel_and_differential(
        self, daemon, service_dir
    ):
        """The CI scenario: a 3-job batch with one duplicate (answered
        from the shared store) and one cancel, byte-identical to the
        in-process runner."""
        fresh = Job("xz", SETUP, "rubix", REQUESTS, 1)
        duplicate = Job("xz", SETUP, "rubix", REQUESTS, 1)
        doomed = Job("mcf", SETUP, "rubix", REQUESTS, 1)
        with SweepClient(daemon.socket_path) as client:
            ids = client.submit([fresh, duplicate, doomed])
            assert len(ids) == 3
            assert client.cancel(ids[2]) == "cancelled"
            first = client.result(ids[0], wait=True, timeout=180)
            second = client.result(ids[1], wait=True, timeout=180)
            records = {r["id"]: r for r in client.status()}

        assert records[ids[0]]["state"] == "done"
        assert records[ids[1]]["state"] == "done"
        # The doomed job may have been caught queued or already running
        # (its worker is killed either way); cancelled is terminal.
        assert records[ids[2]]["state"] == "cancelled"
        assert records[ids[2]]["history"][-1] == "cancelled"
        # The duplicate never executed: it was merged into the in-flight
        # twin or answered straight from the cache.
        assert records[ids[1]]["from_cache"]
        assert canonical(first["result"]) == canonical(second["result"])

        (expected,) = in_process([fresh], service_dir)
        assert canonical(result_to_dict(expected)) == canonical(
            first["result"]
        )

        # A cancelled job has no result to serve.
        with SweepClient(daemon.socket_path) as client:
            with pytest.raises(ServiceError, match="cancelled"):
                client.result(ids[2], wait=True, timeout=5)

    def test_resubmission_is_a_cache_hit_with_metrics(
        self, daemon, service_dir
    ):
        job = Job("wrf", SETUP, "rubix", REQUESTS, 1)
        with SweepClient(daemon.socket_path) as client:
            (first_id,) = client.submit([job])
            first = client.result(first_id, wait=True, timeout=180)
            assert not first["from_cache"]
            (second_id,) = client.submit([job])
            second = client.result(second_id, wait=True, timeout=60)
            assert second["from_cache"]
            assert canonical(first["result"]) == canonical(second["result"])

            stats = client.cache_stats()
        counters = stats["metrics"]["counters"]
        assert counters["svc.cache_hits"] >= 1
        assert counters["svc.cache_misses"] >= 1
        assert counters["svc.jobs_submitted"] == 2
        assert counters["svc.jobs_completed"] == 2
        assert stats["metrics"]["gauges"]["svc.queue_depth"] == 0
        assert stats["cache"]["results"] >= 1
        assert stats["workers"]["total"] == 2

    def test_security_job_round_trips_through_the_daemon(
        self, daemon, service_dir
    ):
        job = SecurityJob(acts=2000, window=4, seeds=3)
        with SweepClient(daemon.socket_path) as client:
            (job_id,) = client.submit([job])
            response = client.result(job_id, wait=True, timeout=180)
        assert response["kind"] == "security"
        runner = ExperimentRunner(
            jobs=1, cache_dir=service_dir + "/refcache"
        )
        expected = _security_results_to_dicts(runner.run_security(job))
        assert canonical(expected) == canonical(response["result"])

    def test_campaign_job_round_trips_through_the_daemon(
        self, daemon, service_dir
    ):
        """A campaign cell served by the daemon equals the in-process
        engine byte-for-byte, and a resubmission is a pure cache hit."""
        from repro.analysis.runner import CampaignJob

        job = CampaignJob(window=4, acts=1200, max_seeds=80)
        with SweepClient(daemon.socket_path) as client:
            (job_id,) = client.submit([job])
            response = client.result(job_id, wait=True, timeout=180)
            (status,) = client.status(job_id)
            (again,) = client.submit([job])
            cached = client.result(again, wait=True, timeout=60)
        assert response["kind"] == "campaign"
        assert status["kind"] == "campaign"
        runner = ExperimentRunner(
            jobs=1, cache_dir=service_dir + "/refcache"
        )
        expected = runner.run_campaign(job)
        assert canonical(expected) == canonical(response["result"])
        assert cached["from_cache"] is True
        assert canonical(cached["result"]) == canonical(response["result"])

    def test_priority_orders_the_backlog(self, service_dir):
        """With the single worker busy, a late high-priority job overtakes
        the earlier low-priority one in the backlog."""
        service = SweepService(
            service_dir + "/p.sock",
            workers=1,
            requests=REQUESTS,
            cache_dir=service_dir + "/pcache",
            poll_interval=0.02,
        )
        thread = threading.Thread(target=service.run, daemon=True)
        thread.start()
        assert service.wait_ready(10)
        try:
            blocker = Job("xz", SETUP, "rubix", REQUESTS, 11)
            low = Job("xz", SETUP, "rubix", REQUESTS, 13)
            high = Job("xz", SETUP, "rubix", REQUESTS, 14)
            with SweepClient(service.socket_path) as client:
                client.submit([blocker])
                (low_id,) = client.submit([low], priority=0)
                (high_id,) = client.submit([high], priority=5)
                client.result(high_id, wait=True, timeout=180)
                # One worker: `high` done means it was dispatched ahead of
                # the earlier-submitted `low`, which cannot be done yet.
                (low_rec,) = client.status(low_id)
                assert low_rec["state"] in ("queued", "running")
                client.result(low_id, wait=True, timeout=180)
        finally:
            service.stop()
            thread.join(timeout=15)

    def test_unknown_job_id_is_a_service_error(self, daemon):
        with SweepClient(daemon.socket_path) as client:
            with pytest.raises(ServiceError, match="unknown job id"):
                client.status("J999999")
            with pytest.raises(ServiceError, match="unknown job id"):
                client.result("J999999", wait=False)

    def test_malformed_submissions_are_refused(self, daemon):
        with SweepClient(daemon.socket_path) as client:
            with pytest.raises(ServiceError, match="jobs"):
                client._call("submit", jobs=[])
            with pytest.raises(ServiceError, match="kind"):
                client._call("submit", jobs=[{"kind": "mystery"}])
            # The connection survives refused requests.
            assert client.ping()["ok"]

    def test_daemon_available_reflects_liveness(self, daemon, service_dir):
        assert daemon_available(daemon.socket_path)
        assert not daemon_available(service_dir + "/nope.sock")


class TestServiceCli:
    def test_cli_round_trip_against_live_daemon(
        self, daemon, service_dir, capsys
    ):
        sock = daemon.socket_path
        code = main([
            "submit", "--workloads", "xz", "--mechanism", "autorfm",
            "--threshold", "4", "--requests", str(REQUESTS),
            "--socket", sock, "--wait",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "submitted J000000" in out
        assert "cycles" in out

        assert main(["status", "--socket", sock]) == 0
        out = capsys.readouterr().out
        assert "J000000" in out and "done" in out

        assert main(["result", "J000000", "--socket", sock]) == 0
        assert "cycles" in capsys.readouterr().out

        assert main(["cache", "--daemon", "--socket", sock]) == 0
        out = capsys.readouterr().out
        assert "svc.jobs_submitted" in out

        # Cancelling a finished job is a no-op state echo.
        assert main(["cancel", "J000000", "--socket", sock]) == 0
        assert "done" in capsys.readouterr().out

    def test_cli_client_commands_fail_cleanly_without_daemon(
        self, service_dir, capsys
    ):
        sock = service_dir + "/nope.sock"
        assert main(["status", "--socket", sock]) == 2
        assert main(["result", "J000000", "--socket", sock]) == 2
        assert main(["cancel", "J000000", "--socket", sock]) == 2
        err = capsys.readouterr().err
        assert "repro serve" in err
