"""Ablation A3 (Section IV-C): simple vs complex memory-controller retry.

The paper's MC keeps one busy bit + timestamp per bank, blocking the whole
bank after an ALERT. The complex alternative tracks retry times per request
so non-conflicting requests keep flowing. The paper argues the simple
design performs similarly because conflicts are rare under Rubix — and
that is what this ablation shows (the gap matters only under Zen, where
conflicts are frequent).
"""

from _common import pct, report

from repro.analysis.experiments import average, slowdown
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup

SIM_WORKLOADS = ("bwaves", "roms", "add", "fotonik3d", "mcf", "scale")


def compute():
    out = {}
    for mapping in ("zen", "rubix"):
        for per_request in (False, True):
            setup = MitigationSetup(
                "autorfm",
                threshold=4,
                policy="fractal",
                per_request_retry=per_request,
            )
            tag = f"{mapping}/{'complex' if per_request else 'simple'}"
            out[tag] = average(
                [(wl, slowdown(wl, setup, mapping)) for wl in SIM_WORKLOADS]
            )
    return out


def test_ablation_mc_retry_policy(benchmark):
    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "ablation_mc_policy",
        render_table(
            ["mapping / MC design", "avg slowdown (6 workloads)"],
            [[tag, pct(s)] for tag, s in out.items()],
            title="Ablation A3: per-bank busy table vs per-request retry",
        ),
    )
    # Under Rubix conflicts are rare: the simple design stays within a
    # couple of points of the complex one (the paper's argument for the
    # Fig. 7 design). Under Zen the gap is large — which is exactly why the
    # simple design is only viable together with randomized mapping.
    assert abs(out["rubix/simple"] - out["rubix/complex"]) < 0.025
    gap_zen = out["zen/simple"] - out["zen/complex"]
    gap_rubix = out["rubix/simple"] - out["rubix/complex"]
    assert gap_zen > gap_rubix
    # The complex design can only help (or tie), never hurt.
    assert out["rubix/complex"] <= out["rubix/simple"] + 0.005
    assert out["zen/complex"] <= out["zen/simple"] + 0.005
