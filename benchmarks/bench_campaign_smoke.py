"""Campaign smoke: throughput and seed economy of the threshold engine.

Runs the mini-campaign grid (the same cells the CI differential pins)
through the adaptive SPRT/bisection engine, verifies every cell against
the fixed-seed oracle, and records two numbers into ``BENCH_perf.json``:

* ``campaign_cells_per_second`` — end-to-end adaptive-engine throughput
  over the grid (wall-clock, min of repeats);
* ``campaign_seeds_saved_pct`` — seed replays avoided versus the fixed
  ``probes x max_seeds`` sweep the engine replaces, aggregated over the
  grid. The acceptance floor is 80%.

The differential assert means the bench can never quote a seed saving for
an engine that has drifted from the oracle's verdicts.

Run standalone:  PYTHONPATH=src python benchmarks/bench_campaign_smoke.py
"""

from __future__ import annotations

import json
import os
import time

import pytest

from bench_perf_smoke import OUTPUT, write_report
from repro.security.campaign import (
    CampaignJob,
    oracle_campaign_cell,
    run_campaign_cell,
    summarize_campaign,
)

REPEATS = 3  # report the fastest repeat: least scheduler noise

#: Seed-saving floor on the smoke grid (ISSUE acceptance: >= 80).
MIN_SAVED_PCT = 80.0

#: The smoke grid: spans trackers, policies, and corpus scenarios while
#: staying cheap enough for the oracle cross-check. Kept in lockstep with
#: ``DIFFERENTIAL_CELLS`` in tests/test_campaign.py.
CELLS = (
    dict(tracker="mint", policy="fractal", window=4, acts=1500,
         max_seeds=80),
    dict(tracker="mint", policy="blast", window=4, acts=1500,
         max_seeds=80),
    dict(tracker="para", policy="fractal", window=4, acts=1500,
         max_seeds=80),
    dict(tracker="graphene", policy="fractal", window=4, acts=1500,
         max_seeds=80),
    dict(scenario="row_press", acts=2000, max_seeds=120),
    dict(scenario="abcd_k", acts=2000, max_seeds=120),
)

skip_perf = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_TESTS", "") == "1",
    reason="perf tests disabled via REPRO_SKIP_PERF_TESTS=1",
)


def run_grid():
    """One adaptive pass over the grid; returns (records, wall_seconds)."""
    jobs = [CampaignJob(**cell) for cell in CELLS]
    start = time.perf_counter()
    records = [run_campaign_cell(job) for job in jobs]
    wall = time.perf_counter() - start
    return records, wall


def run_smoke() -> dict:
    """Time the grid; differential-check it; return the metrics dict."""
    wall = None
    for _ in range(REPEATS):
        records, elapsed = run_grid()
        wall = elapsed if wall is None else min(wall, elapsed)

    for cell, record in zip(CELLS, records):
        oracle = oracle_campaign_cell(CampaignJob(**cell))
        assert (
            record["tolerated_threshold"] == oracle["tolerated_threshold"]
        ), f"adaptive engine diverged from the fixed-seed oracle on {cell}"

    summary = summarize_campaign(records)
    saved_pct = round(
        100.0 * summary["seeds_saved_vs_fixed"] / summary["fixed_cost_seeds"],
        1,
    )
    return {
        "campaign_cells": len(CELLS),
        "campaign_probes": summary["probes"],
        "campaign_seeds_spent": summary["seeds_spent"],
        "campaign_cells_per_second": round(len(CELLS) / wall, 2),
        "campaign_seeds_saved_pct": saved_pct,
    }


@skip_perf
def test_campaign_smoke():
    metrics = run_smoke()
    write_report(metrics)
    assert metrics["campaign_seeds_saved_pct"] >= MIN_SAVED_PCT
    assert metrics["campaign_cells_per_second"] > 0


if __name__ == "__main__":
    metrics = run_smoke()
    write_report(metrics)
    print(json.dumps(metrics, indent=2, sort_keys=True))
    print(f"\nwrote {OUTPUT}")
