"""Fig. 8: impact of the memory mapping on AutoRFM-4.

(a) slowdown and (b) ALERT-per-ACT under the baseline AMD-Zen mapping vs.
Rubix randomized mapping. Paper: Zen averages 16.5 % slowdown / 3.7 %
ALERT-per-ACT; Rubix cuts them to 3.1 % / 0.22 % (a ~16x ALERT reduction).
"""

from _common import PAPER, pct, report

from repro.analysis.experiments import average, run_workload, slowdown
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup
from repro.workloads.catalog import WORKLOADS

SETUP = MitigationSetup("autorfm", threshold=4, policy="fractal")


def compute():
    table = {}
    for name in WORKLOADS:
        zen = run_workload(name, SETUP, "zen")
        rubix = run_workload(name, SETUP, "rubix")
        table[name] = {
            "zen_slowdown": slowdown(name, SETUP, "zen"),
            "rubix_slowdown": slowdown(name, SETUP, "rubix"),
            "zen_alerts": zen.stats.alerts_per_act,
            "rubix_alerts": rubix.stats.alerts_per_act,
        }
    return table


def test_fig8_mapping_impact(benchmark):
    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [
            name,
            pct(row["zen_slowdown"]),
            pct(row["rubix_slowdown"]),
            pct(row["zen_alerts"]),
            pct(row["rubix_alerts"]),
        ]
        for name, row in table.items()
    ]

    def avg(key):
        return average([(n, r[key]) for n, r in table.items()])

    rows.append(
        [
            "AVERAGE",
            pct(avg("zen_slowdown")),
            pct(avg("rubix_slowdown")),
            pct(avg("zen_alerts")),
            pct(avg("rubix_alerts")),
        ]
    )
    rows.append(
        [
            "paper avg",
            pct(PAPER["autorfm4_zen"]),
            pct(PAPER["autorfm4"]),
            pct(PAPER["alert_zen"]),
            pct(PAPER["alert_rubix"]),
        ]
    )
    report(
        "fig8_mapping",
        render_table(
            ["workload", "slowdown Zen", "slowdown Rubix",
             "ALERT/ACT Zen", "ALERT/ACT Rubix"],
            rows,
            title="Fig. 8: AutoRFM-4 under Zen vs Rubix mapping",
        ),
    )

    # Shape: randomized mapping slashes both conflicts and slowdown.
    assert avg("zen_alerts") / max(avg("rubix_alerts"), 1e-9) > 4.0
    assert avg("zen_slowdown") > 2.0 * avg("rubix_slowdown")
    assert avg("rubix_alerts") < 0.01  # ~1/256 regime
    assert avg("rubix_slowdown") < 0.08  # paper: 3.1 %
