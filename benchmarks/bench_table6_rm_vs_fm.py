"""Table VI: slowdown and tolerated TRH-D for Recursive vs Fractal
Mitigation as the AutoRFM threshold varies.

The slowdown column is measured (AutoRFM on Rubix — identical machinery for
RM and FM, as in the paper, where the two share one slowdown column); the
TRH-D columns come from the Appendix-A model. Paper row at AutoRFMTH 4:
3.1 % slowdown, TRH-D 96 (RM) vs 74 (FM).
"""

from _common import pct, report

from repro.analysis.experiments import average, slowdown, workload_rows
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup
from repro.security.mint_model import mint_tolerated_trhd

PAPER_TABLE6 = {
    4: (0.031, 96, 74),
    5: (0.028, 117, 96),
    6: (0.027, 139, 117),
    8: (0.023, 182, 161),
}


def compute():
    out = {}
    for th in PAPER_TABLE6:
        setup = MitigationSetup("autorfm", threshold=th, policy="fractal")
        avg = average(
            workload_rows(lambda wl, s=setup: slowdown(wl, s, "rubix"))
        )
        out[th] = (
            avg,
            mint_tolerated_trhd(th, recursive=True),
            mint_tolerated_trhd(th, recursive=False),
        )
    return out


def test_table6_rm_vs_fm(benchmark):
    ours = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for th, (slow, rm, fm) in ours.items():
        p_slow, p_rm, p_fm = PAPER_TABLE6[th]
        rows.append(
            [th, pct(slow), pct(p_slow), rm, p_rm, fm, p_fm]
        )
    report(
        "table6_rm_vs_fm",
        render_table(
            ["AutoRFMTH", "slowdown", "paper", "RM TRH-D", "paper",
             "FM TRH-D", "paper"],
            rows,
            title="Table VI: Recursive vs Fractal Mitigation",
        ),
    )

    for th, (slow, rm, fm) in ours.items():
        p_slow, p_rm, p_fm = PAPER_TABLE6[th]
        # FM always tolerates a lower threshold than RM at the same window.
        assert fm < rm
        # Analytical thresholds within 10 % of the paper's operating points.
        assert abs(rm - p_rm) / p_rm < 0.10
        assert abs(fm - p_fm) / p_fm < 0.10
        # Slowdown stays small at every threshold.
        assert slow < 0.10
    # The headline: sub-100 TRH-D at AutoRFMTH 4 with FM.
    assert ours[4][2] < 100
    # Larger windows cost (weakly) less.
    assert ours[8][0] <= ours[4][0] + 0.02
