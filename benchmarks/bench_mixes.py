"""Multi-programmed mixes: AutoRFM under heterogeneous co-scheduling.

The paper evaluates homogeneous rate mode; real servers co-schedule mixed
tenants. Four mixes spanning intensity classes check that the AutoRFM-vs-
RFM conclusion carries over, and that a memory-light tenant is not
penalized by a streaming neighbour's mitigations.
"""

from _common import pct, report

from repro.analysis.tables import render_table
from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.sim.config import SystemConfig
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_mix_traces

MIXES = {
    "stream-heavy": ["bwaves", "lbm", "add", "triad", "copy", "scale",
                     "fotonik3d", "roms"],
    "graph-heavy": ["ConnComp", "PageRank", "BFS", "TriCount", "BC",
                    "SSSPath", "mcf", "omnetpp"],
    "mixed-tenants": ["bwaves", "mcf", "add", "omnetpp", "xz", "PageRank",
                      "wrf", "blender"],
    "light+one-streamer": ["bwaves", "wrf", "blender", "cam4", "xz", "wrf",
                           "blender", "cam4"],
}
REQUESTS = 2000


def compute():
    config = SystemConfig()
    out = {}
    for tag, names in MIXES.items():
        traces = make_mix_traces(
            [WORKLOADS[n] for n in names], config, REQUESTS
        )
        base = simulate(traces, MitigationSetup("none"), config, "zen", 1)
        rfm = simulate(
            traces, MitigationSetup("rfm", threshold=4), config, "zen", 1
        )
        auto = simulate(
            traces,
            MitigationSetup("autorfm", threshold=4, policy="fractal"),
            config,
            "rubix",
            1,
        )
        # Per-core slowdown of the light tenants (cores 1+ in the last mix).
        light_slowdown = 1.0 - (
            sum(
                a.ipc / b.ipc
                for a, b in zip(auto.stats.cores[1:], base.stats.cores[1:])
            )
            / (config.num_cores - 1)
        )
        out[tag] = {
            "rfm": rfm.slowdown_vs(base),
            "auto": auto.slowdown_vs(base),
            "light": light_slowdown,
        }
    return out


def test_mixes(benchmark):
    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "mixes",
        render_table(
            ["mix", "RFM-4", "AutoRFM-4", "non-core-0 AutoRFM slowdown"],
            [
                [tag, pct(row["rfm"]), pct(row["auto"]), pct(row["light"])]
                for tag, row in out.items()
            ],
            title="Heterogeneous mixes (8 cores, one workload each)",
        ),
    )
    for tag, row in out.items():
        assert row["auto"] < row["rfm"], tag
        assert row["auto"] < 0.12, tag
    # The light tenants next to a streamer are barely touched.
    assert out["light+one-streamer"]["light"] < 0.08