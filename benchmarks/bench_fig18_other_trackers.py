"""Fig. 18 (Appendix D): AutoRFM with PrIDE, MINT, and Mithril.

Two parts:

1. Tolerated TRH-D of each tracker under AutoRFM-4 — MINT from the
   Appendix-A model; PrIDE from the same model with its effective selection
   probability degraded by FIFO loss and tardiness (PrIDE tolerates ~25 %
   higher thresholds than MINT per Section II-D); Mithril's deterministic
   Misra-Gries bound. All three land sub-125 at AutoRFMTH-4 (paper).
2. A timing simulation showing the *slowdown is tracker-independent* —
   AutoRFM's cost is set by AutoRFMTH alone (Appendix D).
"""

from _common import pct, report

from repro.analysis.experiments import average, slowdown
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup
from repro.security.mint_model import mint_tolerated_trhd

#: PrIDE's threshold premium over MINT (Section II-D: MINT is ~25 % lower).
PRIDE_PREMIUM = 1.25

SIM_WORKLOADS = ("bwaves", "roms", "mcf", "add", "omnetpp", "PageRank")


def mithril_tolerated_trhd(window: int, entries: int, hot_rows: int = 1024) -> int:
    """Deterministic bound for Misra-Gries tracking with mitigation every
    ``window`` ACTs: an attacker spreading over ``hot_rows`` rows can push a
    row's true count at most window + acts/entries above its estimate before
    the top-count mitigation catches it. With enough entries the tracking
    bound collapses, and the floor becomes Fractal Mitigation's
    transitive-safety bound (Appendix B): no FM-based design can claim a
    threshold below 53."""
    from repro.security.fractal_model import fm_safe_trhd

    slack = window * hot_rows / entries
    tracking_bound = int(window + slack) + window
    return max(tracking_bound, fm_safe_trhd())


def compute():
    thresholds = {
        "MINT": mint_tolerated_trhd(4, recursive=False),
        "PrIDE": int(mint_tolerated_trhd(4, recursive=False) * PRIDE_PREMIUM),
        "Mithril-32K": mithril_tolerated_trhd(4, entries=32 * 1024),
    }
    slowdowns = {}
    for tracker in ("mint", "pride", "mithril"):
        setup = MitigationSetup(
            "autorfm",
            threshold=4,
            tracker=tracker,
            policy="fractal",
            mithril_entries=4096,
        )
        rows = [
            (wl, slowdown(wl, setup, "rubix")) for wl in SIM_WORKLOADS
        ]
        slowdowns[tracker] = average(rows)
    return thresholds, slowdowns


def test_fig18_other_trackers(benchmark):
    thresholds, slowdowns = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = render_table(
        ["tracker", "TRH-D @ AutoRFMTH-4"],
        [[name, trhd] for name, trhd in thresholds.items()],
        title="Fig. 18: tolerated threshold per tracker under AutoRFM-4",
    )
    text += "\n\n" + render_table(
        ["tracker", "avg slowdown (6 workloads)"],
        [[name, pct(s)] for name, s in slowdowns.items()],
        title="Appendix D: AutoRFM slowdown is tracker-independent",
    )
    report("fig18_other_trackers", text)

    # All three trackers tolerate sub-125 TRH-D with AutoRFMTH-4 (paper).
    assert all(trhd < 125 for trhd in thresholds.values())
    # MINT has the lowest threshold of the probabilistic trackers.
    assert thresholds["MINT"] < thresholds["PrIDE"]
    # Slowdown is set by AutoRFMTH, not the tracker: all within 2 points.
    values = list(slowdowns.values())
    assert max(values) - min(values) < 0.02
