"""Section VI-C: storage overheads of AutoRFM."""

from _common import report

from repro.analysis.storage import storage_overheads
from repro.analysis.tables import render_table
from repro.sim.config import SystemConfig


def test_storage_overheads(benchmark):
    overheads = benchmark.pedantic(
        lambda: storage_overheads(SystemConfig()), rounds=1, iterations=1
    )
    rows = [
        ["MC busy table (total)", f"{overheads.mc_bytes_total} B", "128 B"],
        [
            "DRAM SAUM register (per bank)",
            f"{overheads.dram_saum_bits_per_bank} bits",
            "9 bits (valid + 8-bit id)",
        ],
        [
            "DRAM tracker (per bank)",
            f"{overheads.dram_tracker_bits_per_bank} bits",
            "4 B (MINT)",
        ],
        [
            "DRAM total (per bank)",
            f"{overheads.dram_bytes_per_bank:.3f} B",
            "~5 B",
        ],
    ]
    report(
        "storage_overheads",
        render_table(
            ["state", "ours", "paper"],
            rows,
            title="Section VI-C: storage overheads",
        ),
    )
    assert overheads.mc_bytes_total == 128
    assert overheads.dram_saum_bits_per_bank == 9
    assert 4.0 <= overheads.dram_bytes_per_bank <= 6.0
