"""Ablation A6: write handling (interleaved vs buffered read-priority drain).

The paper's MC model services requests in order; real controllers buffer
writes and drain them in bursts so reads keep priority. This ablation checks
that the choice does not move the headline comparison — AutoRFM's advantage
is orthogonal to write scheduling.
"""

import dataclasses

from _common import pct, report

from repro.analysis.tables import render_table
from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.sim.config import SystemConfig
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces

SIM_WORKLOADS = ("lbm", "copy", "scale", "omnetpp")  # write-heavy picks
REQUESTS = 2000


def compute():
    out = {}
    for drain in (False, True):
        config = dataclasses.replace(SystemConfig(), write_drain=drain)
        rfm_vals, auto_vals = [], []
        for name in SIM_WORKLOADS:
            traces = make_rate_traces(WORKLOADS[name], config, REQUESTS)
            base = simulate(traces, MitigationSetup("none"), config, "zen", 1)
            rfm = simulate(
                traces, MitigationSetup("rfm", threshold=4), config, "zen", 1
            )
            auto = simulate(
                traces,
                MitigationSetup("autorfm", threshold=4, policy="fractal"),
                config,
                "rubix",
                1,
            )
            rfm_vals.append(rfm.slowdown_vs(base))
            auto_vals.append(auto.slowdown_vs(base))
        tag = "buffered drain" if drain else "interleaved (default)"
        out[tag] = (
            sum(rfm_vals) / len(rfm_vals),
            sum(auto_vals) / len(auto_vals),
        )
    return out


def test_ablation_write_drain(benchmark):
    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "ablation_write_drain",
        render_table(
            ["write handling", "RFM-4", "AutoRFM-4"],
            [[tag, pct(r), pct(a)] for tag, (r, a) in out.items()],
            title="Ablation A6: write scheduling (4 write-heavy workloads)",
        ),
    )
    for tag, (rfm, auto) in out.items():
        assert rfm > 3 * auto, tag  # the headline survives either policy
    # The two write policies agree within a few points on both mechanisms.
    drain = out["buffered drain"]
    plain = out["interleaved (default)"]
    assert abs(drain[0] - plain[0]) < 0.08
    assert abs(drain[1] - plain[1]) < 0.05