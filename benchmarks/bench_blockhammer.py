"""BlockHammer comparison (Section VII-D): rate limiting vs AutoRFM.

BlockHammer needs no DRAM changes at all, but its protection comes from
throttling: benign workloads are nearly free, while any row that trips the
blacklist is slowed to the safe rate. Two probes:

* benign cost across workloads (compare with AutoRFM-4);
* an attacker's achievable ACT rate on its target rows, with and without
  the limiter.
"""

from _common import pct, report

from repro.analysis.experiments import average, slowdown
from repro.analysis.tables import render_table
from repro.cpu.system import build_mapping, simulate
from repro.mc.setup import MitigationSetup
from repro.sim.config import SystemConfig
from repro.workloads.adversarial import hammer_trace

SIM_WORKLOADS = ("bwaves", "roms", "mcf", "add", "omnetpp", "PageRank")


def compute():
    benign = {
        "BlockHammer (TRH 1000)": average(
            [
                (wl, slowdown(wl, MitigationSetup("blockhammer",
                                                  blockhammer_trh=1000), "zen"))
                for wl in SIM_WORKLOADS
            ]
        ),
        "BlockHammer (TRH 100)": average(
            [
                (wl, slowdown(wl, MitigationSetup("blockhammer",
                                                  blockhammer_trh=100), "zen"))
                for wl in SIM_WORKLOADS
            ]
        ),
        "AutoRFM-4 (Rubix+FM)": average(
            [
                (wl, slowdown(wl, MitigationSetup("autorfm", threshold=4),
                              "rubix"))
                for wl in SIM_WORKLOADS
            ]
        ),
    }

    # Attack probe: two-row hammer through the Zen mapping.
    config = SystemConfig()
    mapping = build_mapping("zen", config)
    attacker = hammer_trace(mapping, [5000, 5002], num_requests=3000)
    idle = [attacker.sliced(0)] * (config.num_cores - 1)
    unlimited = simulate(
        [attacker] + idle, MitigationSetup("none"), config, "zen"
    )
    limited = simulate(
        [attacker] + idle,
        MitigationSetup("blockhammer", blockhammer_trh=100),
        config,
        "zen",
    )
    rates = {
        "unprotected": unlimited.stats.total_activations / unlimited.stats.cycles,
        "blockhammer": limited.stats.total_activations / limited.stats.cycles,
    }
    return benign, rates


def test_blockhammer(benchmark):
    benign, rates = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = render_table(
        ["configuration", "benign avg slowdown (6 workloads)"],
        [[tag, pct(s)] for tag, s in benign.items()],
        title="BlockHammer vs AutoRFM: benign cost",
    )
    reduction = rates["unprotected"] / max(rates["blockhammer"], 1e-12)
    text += (
        f"\nattacker ACT rate: unprotected {rates['unprotected']:.4f}/cycle,"
        f" BlockHammer {rates['blockhammer']:.6f}/cycle"
        f" ({reduction:,.0f}x reduction)"
    )
    report("blockhammer", text)

    # Benign traffic rarely trips the blacklist: near-zero cost.
    assert abs(benign["BlockHammer (TRH 1000)"]) < 0.03
    # A deliberate hammer is throttled by orders of magnitude.
    assert reduction > 50
    # At ultra-low thresholds the throttle begins to touch benign hot rows.
    assert (
        benign["BlockHammer (TRH 100)"]
        >= benign["BlockHammer (TRH 1000)"] - 0.01
    )