"""Table III: TRH-D tolerated by MINT (recursive mitigation) vs window size.

Analytical (Appendix A). The paper's operating points are slightly above the
raw model output because it rounds conservatively; we assert agreement
within 10 %.
"""

from _common import report

from repro.analysis.tables import render_table
from repro.security.mint_model import mint_tolerated_trhd

PAPER_TABLE3 = {4: 96, 8: 182, 16: 356, 32: 702}


def test_table3_mint_thresholds(benchmark):
    ours = benchmark.pedantic(
        lambda: {w: mint_tolerated_trhd(w, recursive=True) for w in PAPER_TABLE3},
        rounds=1,
        iterations=1,
    )
    rows = [
        [w, PAPER_TABLE3[w], ours[w], f"{(ours[w] - PAPER_TABLE3[w]) / PAPER_TABLE3[w]:+.1%}"]
        for w in PAPER_TABLE3
    ]
    report(
        "table3_mint_threshold",
        render_table(
            ["window W", "paper TRH-D", "model TRH-D", "delta"],
            rows,
            title="Table III: threshold tolerated by MINT (recursive mitigation)",
        ),
    )
    for w, expected in PAPER_TABLE3.items():
        assert abs(ours[w] - expected) / expected < 0.10
    # Shape: doubling the window roughly doubles the tolerated threshold.
    assert 1.7 < ours[8] / ours[4] < 2.2
    assert 1.7 < ours[32] / ours[16] < 2.2
