"""Fig. 3: per-workload slowdown of RFM-4/8/16/32 with the MINT tracker.

Paper averages: 33 %, 12.9 %, 4.4 %, 0.2 %. We assert the shape: a steep,
monotone decay with RFM-4 unacceptably expensive (> 20 %) and RFM-32 nearly
free (< 2 %).
"""

from _common import PAPER, pct, report

from repro.analysis.charts import render_barchart
from repro.analysis.experiments import average, slowdown, workload_rows
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup
from repro.workloads.catalog import WORKLOADS

THRESHOLDS = (4, 8, 16, 32)


def compute():
    table = {}
    for th in THRESHOLDS:
        setup = MitigationSetup("rfm", threshold=th)
        table[th] = dict(workload_rows(lambda wl, s=setup: slowdown(wl, s)))
    return table


def test_fig3_rfm_slowdown(benchmark):
    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [wl] + [pct(table[th][wl]) for th in THRESHOLDS] for wl in WORKLOADS
    ]
    averages = {th: average(list(table[th].items())) for th in THRESHOLDS}
    rows.append(["AVERAGE"] + [pct(averages[th]) for th in THRESHOLDS])
    rows.append(
        ["paper avg"]
        + [pct(PAPER[f"rfm{th}"]) for th in THRESHOLDS]
    )
    text = render_table(
        ["workload"] + [f"RFM-{th}" for th in THRESHOLDS],
        rows,
        title="Fig. 3: slowdown of blocking RFM",
    )
    text += "\n\n" + render_barchart(
        [(f"RFM-{th}", 100 * averages[th]) for th in THRESHOLDS],
        unit="%",
        title="average slowdown",
    )
    report("fig3_rfm_slowdown", text)

    # Shape assertions.
    assert averages[4] > averages[8] > averages[16] > averages[32]
    assert averages[4] > 0.20  # unacceptable at ultra-low thresholds
    assert averages[32] < 0.02  # nearly free at RFMTH 32
    assert averages[4] / max(averages[16], 1e-9) > 3.0
