"""Shared infrastructure for the benchmark suite.

Every bench computes one paper table/figure, registers a rendered
paper-vs-measured report via :func:`report` (dumped in pytest's terminal
summary and written under ``benchmarks/results/``), and asserts the *shape*
of the result — who wins, by roughly what factor — not absolute numbers.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_REPORTS: List[Tuple[str, str]] = []


def report(name: str, text: str) -> None:
    """Register a bench report: printed in the terminal summary and saved."""
    _REPORTS.append((name, text))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")


def consume_reports() -> List[Tuple[str, str]]:
    out = list(_REPORTS)
    _REPORTS.clear()
    return out


def pct(value: float) -> str:
    return f"{100.0 * value:.1f}%"


#: Paper-reported averages used in the shape assertions and reports.
PAPER: Dict[str, float] = {
    "rfm4": 0.33,
    "rfm8": 0.129,
    "rfm16": 0.044,
    "rfm32": 0.002,
    "autorfm4": 0.031,
    "autorfm8": 0.023,
    "autorfm4_zen": 0.165,
    "alert_zen": 0.037,
    "alert_rubix": 0.0022,
    "rubix_alone": 0.015,
    "prac_slowdown": 0.04,
}
