"""Tracker design space: storage vs tolerated threshold (Appendix D).

The quantitative version of the paper's tracker positioning: MINT is the
smallest tracker and (with FM) tolerates the lowest threshold among the
probabilistic ones; deterministic trackers reach the FM floor (TRH-D 53)
but pay orders of magnitude more SRAM.
"""

from _common import report

from repro.analysis.tables import render_table
from repro.analysis.tradeoffs import cheapest_tracker_for, tracker_tradeoffs


def test_tracker_design_space(benchmark):
    points = benchmark.pedantic(
        lambda: tracker_tradeoffs(window=4), rounds=1, iterations=1
    )
    rows = [
        [
            p.name,
            f"{p.storage_bytes_per_bank:,.1f} B",
            p.tolerated_trhd,
            "deterministic" if p.deterministic else "probabilistic",
        ]
        for p in sorted(points, key=lambda p: p.storage_bits_per_bank)
    ]
    text = render_table(
        ["tracker", "SRAM / bank", "TRH-D @ AutoRFMTH-4", "kind"],
        rows,
        title="Tracker storage vs tolerated threshold (Appendix D)",
    )
    text += (
        f"\ncheapest tracker for TRH-D 100: {cheapest_tracker_for(100).name};"
        f" for TRH-D 60: {cheapest_tracker_for(60).name}"
    )
    report("tracker_tradeoffs", text)

    by_name = {p.name: p for p in points}
    # MINT: smallest storage, sub-100 threshold — the paper's pick.
    assert by_name["MINT"].storage_bytes_per_bank <= 8
    assert by_name["MINT"].tolerated_trhd < 100
    # Every deterministic tracker costs > 1000x MINT's SRAM.
    for p in points:
        if p.deterministic:
            assert (
                p.storage_bits_per_bank
                > 100 * by_name["MINT"].storage_bits_per_bank
            )