"""Mitigation-action comparison: victim refresh (FM) vs row migration (RRS).

Section VII-D lists row-migration defenses (RRS, AQUA, SRS, SHADOW) as the
alternative to victim refresh. Running both through AutoRFM's transparent
framework isolates the action cost: a swap streams two full rows (16x tRC
of subarray lock) versus four victim refreshes (4x tRC), so at the same
mitigation cadence migration costs noticeably more — the reason the paper
builds on victim refresh for ultra-low thresholds.
"""

from _common import pct, report

from repro.analysis.experiments import average, run_workload, slowdown
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup

SIM_WORKLOADS = ("bwaves", "roms", "mcf", "add", "fotonik3d", "omnetpp")

VARIANTS = {
    "AutoRFM-4 + Fractal Mitigation": MitigationSetup(
        "autorfm", threshold=4, policy="fractal"
    ),
    "AutoRFM-4 + Quarantine (AQUA)": MitigationSetup(
        "autorfm", threshold=4, policy="aqua"
    ),
    "AutoRFM-4 + Row Swap (RRS)": MitigationSetup(
        "autorfm", threshold=4, policy="rowswap"
    ),
    "AutoRFM-8 + Row Swap (RRS)": MitigationSetup(
        "autorfm", threshold=8, policy="rowswap"
    ),
}


def compute():
    out = {}
    for tag, setup in VARIANTS.items():
        slow = average(
            [(wl, slowdown(wl, setup, "rubix")) for wl in SIM_WORKLOADS]
        )
        swaps = sum(
            run_workload(wl, setup, "rubix").stats.total_row_swaps
            for wl in SIM_WORKLOADS
        )
        out[tag] = (slow, swaps)
    return out


def test_rowswap_vs_fractal(benchmark):
    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "rowswap",
        render_table(
            ["configuration", "avg slowdown", "row swaps"],
            [[tag, pct(s), swaps] for tag, (s, swaps) in out.items()],
            title="Victim refresh vs row migration under AutoRFM (6 workloads)",
        ),
    )
    fm, _ = out["AutoRFM-4 + Fractal Mitigation"]
    aqua4, moves4 = out["AutoRFM-4 + Quarantine (AQUA)"]
    rrs4, swaps4 = out["AutoRFM-4 + Row Swap (RRS)"]
    rrs8, _ = out["AutoRFM-8 + Row Swap (RRS)"]
    assert swaps4 > 0 and moves4 > 0
    # Migration's longer subarray lock costs more at equal cadence ...
    assert rrs4 > fm
    # ... a one-way quarantine move (8x tRC) sits between FM and a full
    # swap (16x tRC) ...
    assert fm < aqua4 < rrs4
    # ... and halving the cadence recovers part of it.
    assert rrs8 < rrs4