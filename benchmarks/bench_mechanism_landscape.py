"""The mechanism landscape at the paper's target: TRH-D ~74.

A capstone synthesis of Sections VI-VII: for every mitigation family the
repo implements, what does protecting the sub-100 regime cost? Measured
slowdowns for the simulated mechanisms; analytical device costs for the
DRAM-redesign families (PRAC's +10 % tRC is simulated; REGA's required
refresh rate comes from its scaling model).
"""

from _common import pct, report

from repro.analysis.experiments import average, slowdown
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup
from repro.security.rega import rega_k_for_trhd, rega_trc_factor

SIM_WORKLOADS = ("bwaves", "roms", "mcf", "add", "omnetpp", "PageRank")
TARGET_TRHD = 74


def avg_slowdown(setup, mapping):
    return average(
        [(wl, slowdown(wl, setup, mapping)) for wl in SIM_WORKLOADS]
    )


def compute():
    rows = {}
    rows["AutoRFM-4 (Rubix+FM)"] = avg_slowdown(
        MitigationSetup("autorfm", threshold=4, policy="fractal"), "rubix"
    )
    rows["blocking RFM-4"] = avg_slowdown(
        MitigationSetup("rfm", threshold=4), "zen"
    )
    rows["PRAC+ABO"] = avg_slowdown(
        MitigationSetup("prac", prac_trh_d=TARGET_TRHD), "zen"
    )
    rows["SMD (PARA 1/4)"] = avg_slowdown(
        MitigationSetup("smd", threshold=4), "zen"
    )
    rows["BlockHammer"] = avg_slowdown(
        MitigationSetup("blockhammer", blockhammer_trh=TARGET_TRHD), "zen"
    )
    rows["AutoRFM-4 + AQUA migration"] = avg_slowdown(
        MitigationSetup("autorfm", threshold=4, policy="aqua"), "rubix"
    )
    k = rega_k_for_trhd(TARGET_TRHD)
    rega_cost = rega_trc_factor(k) - 1.0
    return rows, k, rega_cost


def test_mechanism_landscape(benchmark):
    rows, rega_k, rega_cost = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = [[name, pct(value)] for name, value in rows.items()]
    table.append(
        [f"REGA-V{rega_k} (analytical)", f"tRC +{pct(rega_cost)}"]
    )
    report(
        "mechanism_landscape",
        render_table(
            ["mechanism", f"cost at TRH-D ~{TARGET_TRHD}"],
            table,
            title="The mitigation landscape at the paper's target threshold",
        ),
    )

    autorfm = rows["AutoRFM-4 (Rubix+FM)"]
    # AutoRFM is the cheapest *low-cost* mechanism at the target threshold:
    # every alternative that needs no DRAM-array redesign pays double
    # digits.
    for name in ("blocking RFM-4", "SMD (PARA 1/4)", "BlockHammer",
                 "AutoRFM-4 + AQUA migration"):
        assert rows[name] > autorfm, name
    assert autorfm < 0.10
    assert rows["blocking RFM-4"] > 0.20
    assert rows["BlockHammer"] > 0.20
    # PRAC's slowdown is comparable (within a couple of points — the paper
    # reports 4 % vs 3.1 %); the paper's case against it is the per-row
    # counter area and the ABO interface, not throughput.
    assert abs(rows["PRAC+ABO"] - autorfm) < 0.03
    assert rega_cost > 1.0  # REGA needs > +100 % tRC for sub-100