"""Fig. 14 (Appendix A): TRH-D tolerated by MINT vs window size, for
recursive and fractal mitigation."""

from _common import report

from repro.analysis.tables import render_table
from repro.security.mint_model import mint_tolerated_trhd

WINDOWS = (2, 3, 4, 5, 6, 8, 12, 16, 24, 32)


def compute():
    return [
        (
            w,
            mint_tolerated_trhd(w, recursive=True),
            mint_tolerated_trhd(w, recursive=False),
        )
        for w in WINDOWS
    ]


def test_fig14_threshold_vs_window(benchmark):
    curve = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "fig14_threshold_vs_window",
        render_table(
            ["window W", "TRH-D recursive", "TRH-D fractal"],
            curve,
            title="Fig. 14: MINT tolerated threshold vs window size",
        ),
    )
    rm = [r for _, r, _ in curve]
    fm = [f for _, _, f in curve]
    # Monotone in the window, FM strictly below RM everywhere.
    assert rm == sorted(rm) and fm == sorted(fm)
    assert all(f < r for f, r in zip(fm, rm))
    # Roughly linear scaling: TRH-D per window slot stays in a tight band.
    slopes = [f / w for (w, _, f) in curve[2:]]
    assert max(slopes) / min(slopes) < 1.35
