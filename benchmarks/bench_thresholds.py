"""Fig. 1(a) / Table II: the Rowhammer threshold trend over DRAM generations."""

from _common import report

from repro.analysis.tables import render_table
from repro.security.thresholds import TRH_HISTORY, halving_time_years, threshold_trend


def test_table2_threshold_history(benchmark):
    trend = benchmark.pedantic(threshold_trend, rounds=1, iterations=1)
    rows = [
        [
            e.generation,
            e.year,
            e.trh_single or "-",
            e.trh_double_low or "-",
            e.trh_double_high or "-",
        ]
        for e in TRH_HISTORY
    ]
    text = render_table(
        ["generation", "year", "TRH-S", "TRH-D low", "TRH-D high"],
        rows,
        title="Table II / Fig. 1a: Rowhammer threshold over time",
    )
    text += f"\nthreshold halving time: {halving_time_years():.1f} years"
    report("table2_thresholds", text)

    # Shape: strictly decreasing trend, 139K (2014) down to 4.8K (2020).
    values = [v for _, v in trend]
    assert values[0] == 139_000
    assert values[-1] == 4_800
    assert all(a > b for a, b in zip(values, values[1:]))
