"""Denial-of-service resilience (Sections IV-A / V-B and contribution 4).

One core runs an adversary that pins a single subarray under perpetual
mitigation (cycling rows of bank 0, subarray 0, through the mapping's
inverse — the strongest attacker); seven cores run a normal workload. The
paper's claims under test:

1. with Fractal Mitigation and the simple per-bank busy table, a declined
   ACT is *guaranteed* to succeed on its retry (max one ALERT per request);
2. the victims' slowdown stays bounded — the attacker can deny at most one
   bank for ~50 % of the time, not the channel;
3. recursive mitigation's chained rounds break the single-retry guarantee
   once the bank keeps servicing other requests (per-request-retry MC).
"""

from _common import pct, report

from repro.analysis.tables import render_table
from repro.cpu.system import build_mapping, simulate
from repro.mc.setup import MitigationSetup
from repro.sim.config import SystemConfig
from repro.workloads.adversarial import subarray_dos_trace
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces

REQUESTS = 2500
VICTIM = "roms"

VARIANTS = {
    "FM, per-bank busy table": MitigationSetup(
        "autorfm", threshold=4, policy="fractal"
    ),
    "RM, per-bank busy table": MitigationSetup(
        "autorfm", threshold=4, policy="recursive"
    ),
    "FM, per-request retry": MitigationSetup(
        "autorfm", threshold=4, policy="fractal", per_request_retry=True
    ),
    "RM, per-request retry": MitigationSetup(
        "autorfm", threshold=4, policy="recursive", per_request_retry=True
    ),
}


def victim_speedup(with_attack, without_attack):
    """Mean IPC ratio over the victim cores (1..7)."""
    ratios = [
        a.ipc / b.ipc
        for a, b in zip(with_attack.cores[1:], without_attack.cores[1:])
    ]
    return sum(ratios) / len(ratios)


def compute():
    config = SystemConfig()
    mapping = build_mapping("rubix", config, seed=1)
    victims = make_rate_traces(WORKLOADS[VICTIM], config, REQUESTS)[1:]
    attacker = subarray_dos_trace(mapping, config, num_requests=4 * REQUESTS)

    # Reference: the attacker's raw bandwidth/bank congestion with NO
    # mitigation machinery to exploit. The DoS question is how much *extra*
    # victim damage each mitigation design hands the attacker.
    congestion_only = simulate(
        [attacker] + victims, MitigationSetup("none"), config, "rubix", seed=1
    )

    out = {}
    for tag, setup in VARIANTS.items():
        attacked = simulate([attacker] + victims, setup, config, "rubix", seed=1)
        out[tag] = {
            "dos_amplification": 1.0
            - victim_speedup(attacked.stats, congestion_only.stats),
            "max_alerts": attacked.stats.max_request_alerts,
            "alerts": attacked.stats.total_alerts,
        }
    return out


def test_dos_resilience(benchmark):
    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "dos_resilience",
        render_table(
            ["configuration", "DoS amplification", "max ALERTs/request",
             "total ALERTs"],
            [
                [tag, pct(row["dos_amplification"]), row["max_alerts"],
                 row["alerts"]]
                for tag, row in out.items()
            ],
            title=(
                "DoS probe: subarray-pinning attacker vs 7 victim cores\n"
                "(amplification = extra victim slowdown beyond the "
                "attacker's raw congestion)"
            ),
        ),
    )

    fm_simple = out["FM, per-bank busy table"]
    fm_complex = out["FM, per-request retry"]
    rm_complex = out["RM, per-request retry"]
    # Claim 1: the Fig. 7 design + FM give the single-retry guarantee.
    assert fm_simple["max_alerts"] <= 1
    # Claim 2: the attack is confined to (head-of-line blocking on) the one
    # attacked bank out of 64 — amplification is bounded, not catastrophic.
    # Reproduction finding: it is NOT negligible for the per-bank busy
    # table (~15-20 %), because every attacker ALERT blocks the whole bank
    # for t_M and victim requests queue behind; the per-request-retry MC
    # eliminates the amplification entirely (and even deprioritizes the
    # attacker). The paper's benign-workload evaluation does not surface
    # this trade-off of the "simple design" (Section IV-C).
    assert fm_simple["dos_amplification"] < 0.30
    assert fm_complex["dos_amplification"] < 0.02
    # Claim 3: chained recursive mitigation with a non-blocking MC breaks
    # the deterministic-latency property (repeated failures appear).
    assert rm_complex["max_alerts"] >= fm_simple["max_alerts"]
    assert rm_complex["max_alerts"] > 1