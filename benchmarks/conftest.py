"""Benchmark-suite conftest: dump every bench report in the terminal summary
(terminal-summary output is never captured, so reports are always visible)."""

from _common import consume_reports


def pytest_terminal_summary(terminalreporter):
    reports = consume_reports()
    if not reports:
        return
    terminalreporter.write_sep("=", "paper-vs-measured reports")
    for name, text in reports:
        terminalreporter.write_sep("-", name)
        terminalreporter.write_line(text)
