"""Section VII-B: AutoRFM vs Self-Managed DRAM (SMD).

SMD pioneered the decline-and-retry framework (ACT_NACK) but locks coarse
maintenance regions, samples with PARA, runs on a conventional mapping, and
has no transitive-attack defense. The paper reports SMD with PARA p=1/5 at
11.3 % slowdown vs AutoRFM's 3.1 % — this bench reproduces that contrast
and attributes it: subarray-granular locks recover much of the gap, while
randomized mapping only pays off once the locks are fine-grained (with
1/8-of-a-bank regions the conflict probability is ~1/8 under any mapping).
"""

from _common import pct, report

from repro.analysis.experiments import average, slowdown
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup

SIM_WORKLOADS = (
    "bwaves", "roms", "mcf", "add", "fotonik3d", "omnetpp", "scale", "BC",
)

VARIANTS = {
    # paper's SMD operating point: PARA p=1/5, region locks, Zen mapping.
    "SMD (PARA 1/5, 8 regions, Zen)": (
        MitigationSetup("smd", threshold=5, smd_regions_per_bank=8),
        "zen",
    ),
    # intermediate: SMD machinery at subarray granularity.
    "SMD + subarray locks (Zen)": (
        MitigationSetup("smd", threshold=5, smd_regions_per_bank=256),
        "zen",
    ),
    # intermediate: SMD + randomized mapping.
    "SMD + Rubix (8 regions)": (
        MitigationSetup("smd", threshold=5, smd_regions_per_bank=8),
        "rubix",
    ),
    "AutoRFM-4 (Rubix + FM)": (
        MitigationSetup("autorfm", threshold=4, policy="fractal"),
        "rubix",
    ),
}


def compute():
    return {
        tag: average(
            [(wl, slowdown(wl, setup, mapping)) for wl in SIM_WORKLOADS]
        )
        for tag, (setup, mapping) in VARIANTS.items()
    }


def test_smd_comparison(benchmark):
    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = render_table(
        ["configuration", "avg slowdown (8 workloads)"],
        [[tag, pct(s)] for tag, s in out.items()],
        title="Section VII-B: AutoRFM vs Self-Managed DRAM",
    )
    text += "\npaper: SMD (PARA p=1/5) 11.3%; AutoRFM 3.1%"
    report("smd_comparison", text)

    smd = out["SMD (PARA 1/5, 8 regions, Zen)"]
    autorfm = out["AutoRFM-4 (Rubix + FM)"]
    # The paper's contrast: SMD costs several times AutoRFM.
    assert smd > 2.0 * autorfm
    assert smd > 0.06  # double-digit territory (paper: 11.3 %)
    assert autorfm < 0.08
    # Granularity matters: subarray locks alone recover a large chunk.
    assert out["SMD + subarray locks (Zen)"] < 0.8 * smd
    # Randomization alone does NOT: with 1/8-of-a-bank regions the conflict
    # probability is ~1/8 for *any* mapping, and Rubix's extra activations
    # even add mitigations. Fine-grained locks and randomized mapping are
    # only effective together — the paper's two key enablers.
    assert out["SMD + Rubix (8 regions)"] > smd - 0.02