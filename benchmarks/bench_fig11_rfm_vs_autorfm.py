"""Fig. 11: RFM vs AutoRFM per-workload slowdown at thresholds 4 and 8.

Paper averages: RFM-4 33 % / RFM-8 12.9 % vs AutoRFM-4 3.1 % / AutoRFM-8
2.3 % (AutoRFM uses randomized mapping + Fractal Mitigation).
"""

from _common import PAPER, pct, report

from repro.analysis.experiments import average, slowdown_matrix
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup
from repro.workloads.catalog import WORKLOADS


def compute():
    # One batched submission: all runs plus the shared Zen baselines fan
    # out across REPRO_JOBS workers and the persistent result cache.
    specs = []
    for th in (4, 8):
        specs.append((f"rfm{th}", MitigationSetup("rfm", threshold=th), "zen"))
        specs.append(
            (
                f"auto{th}",
                MitigationSetup("autorfm", threshold=th, policy="fractal"),
                "rubix",
            )
        )
    return slowdown_matrix(WORKLOADS, specs)


def test_fig11_rfm_vs_autorfm(benchmark):
    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    keys = ("rfm4", "auto4", "rfm8", "auto8")
    rows = [[wl] + [pct(table[k][wl]) for k in keys] for wl in WORKLOADS]
    averages = {k: average(list(table[k].items())) for k in keys}
    rows.append(["AVERAGE"] + [pct(averages[k]) for k in keys])
    rows.append(
        ["paper avg", pct(PAPER["rfm4"]), pct(PAPER["autorfm4"]),
         pct(PAPER["rfm8"]), pct(PAPER["autorfm8"])]
    )
    report(
        "fig11_rfm_vs_autorfm",
        render_table(
            ["workload", "RFM-4", "AutoRFM-4", "RFM-8", "AutoRFM-8"],
            rows,
            title="Fig. 11: RFM vs AutoRFM (Rubix + Fractal Mitigation)",
        ),
    )

    # The headline result: AutoRFM is several times cheaper than RFM.
    assert averages["rfm4"] / max(averages["auto4"], 1e-9) > 3.0
    assert averages["rfm8"] > averages["auto8"]
    assert averages["auto4"] < 0.08  # paper: 3.1 %
    # The gap narrows as thresholds rise.
    gap4 = averages["rfm4"] - averages["auto4"]
    gap8 = averages["rfm8"] - averages["auto8"]
    assert gap4 > gap8
