"""Fig. 16 (Appendix B): escape probability vs damage for Fractal
Mitigation and MINT-4, plus the mixed-attack argument and a Monte-Carlo
spot check of FM's distance distribution.
"""

import numpy as np
from _common import report

from repro.analysis.tables import render_table
from repro.core.mitigation import FractalMitigation
from repro.security.fractal_model import (
    fm_escape_probability,
    fm_max_damage,
    fm_safe_trhd,
    mint_escape_probability,
    mixed_attack_escape,
)

DAMAGES = (0, 20, 40, 60, 80, 104, 120, 150)


def compute():
    rows = [
        (d, fm_escape_probability(d), mint_escape_probability(d, 4))
        for d in DAMAGES
    ]
    mixed = mixed_attack_escape(40, 80, window=4)
    pure = mint_escape_probability(120, 4)
    return rows, mixed, pure


def test_fig16_escape_probability(benchmark):
    rows, mixed, pure = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = render_table(
        ["damage", "P_escape FM", "P_escape MINT-4"],
        [[d, f"{fme:.2e}", f"{me:.2e}"] for d, fme, me in rows],
        title="Fig. 16: escape probability vs damage",
    )
    text += (
        f"\nmax FM damage at 1e-18 escape: {fm_max_damage():.1f} "
        f"(paper: 104) -> safe TRH-D {fm_safe_trhd()} (paper: 53)"
        f"\nmixed attack (40 FM + 80 MINT): escape {mixed:.1e}; "
        f"pure MINT 120: {pure:.1e}"
    )
    report("fig16_escape", text)

    # Shape: both curves decay; FM decays slower per unit damage than
    # MINT-4 (exp(-d/2.5) vs 0.75^d), so FM's bound is the lower threshold.
    fm_vals = [fme for _, fme, _ in rows]
    assert fm_vals == sorted(fm_vals, reverse=True)
    assert fm_escape_probability(104) < 1e-17
    assert fm_safe_trhd() == 53
    # Appendix B's conclusion: mixing attacks only hurts the attacker.
    assert mixed < pure


def test_fig16_distance_distribution_montecarlo(benchmark):
    """FM's implemented distance distribution matches 2^(1-d) (Fig. 10)."""

    def sample():
        policy = FractalMitigation(1 << 17, np.random.default_rng(3))
        counts = {}
        n = 60_000
        for _ in range(n):
            d = policy.draw_distance()
            counts[d] = counts.get(d, 0) + 1
        return {d: c / n for d, c in counts.items()}

    freq = benchmark.pedantic(sample, rounds=1, iterations=1)
    report(
        "fig16_distance_mc",
        render_table(
            ["distance d", "measured P", "model 2^(1-d)"],
            [[d, f"{freq.get(d, 0):.4f}",
              f"{FractalMitigation.refresh_probability(d):.4f}"]
             for d in range(2, 9)],
            title="Fractal Mitigation distance distribution (Monte Carlo)",
        ),
    )
    for d in range(2, 7):
        expected = FractalMitigation.refresh_probability(d)
        assert abs(freq.get(d, 0.0) - expected) / expected < 0.2
