"""Perf smoke: events/sec of the simulation kernel on a fixed workload.

Unlike the figure benches, this one measures the *simulator*, not the
simulated system: one fixed small run (bwaves, AutoRFM-4 on Rubix, 2500
requests per core, seed 1), timed end to end, reduced to events processed
per wall-clock second, plus a small mixed fleet timed on both timing
backends (the scalar event loop and the fused batch kernel) to quote the
batch speedup. The numbers land in ``BENCH_perf.json`` at the repo root so
successive checkouts can be compared; regressions to the scheduler, the
event-loop hot path, or the kernel show up here first.

Run standalone:  PYTHONPATH=src python benchmarks/bench_perf_smoke.py
"""

from __future__ import annotations

import json
import os
import time

import repro.cpu.system as system
from repro.mc.setup import MitigationSetup
from repro.obs import ObsConfig, Observability
from repro.sim.batch import SimLane, simulate_batch
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT = os.path.join(REPO_ROOT, "BENCH_perf.json")

WORKLOAD = "bwaves"
SETUP = dict(mechanism="autorfm", threshold=4, policy="fractal")
MAPPING = "rubix"
REQUESTS = 2500
SEED = 1
REPEATS = 3  # report the fastest repeat: least scheduler noise

#: The backend-comparison fleet: kernel-eligible setups spanning the cheap
#: (unmitigated), the counter-heavy (PRAC), and the paper's headline
#: AutoRFM configuration, each at two seeds — a mix that keeps the quoted
#: speedup honest about per-mechanism variance instead of cherry-picking
#: the kernel's best case.
FLEET_SETUPS = (
    dict(mechanism="none"),
    dict(mechanism="prac", prac_trh_d=100),
    dict(mechanism="autorfm", threshold=4, policy="fractal"),
)
FLEET_SEEDS = (1, 2)
#: Longer slices than the headline smoke: the kernel pays a fixed
#: per-lane setup cost (vectorized trace decode), so short runs understate
#: the steady-state speedup the sweeps actually see.
FLEET_REQUESTS = 5000


class _CountingEngine(Engine):
    """Engine that remembers the last instance so the bench can read
    ``_seq`` (every scheduled event is processed once the heap drains)."""

    last: "_CountingEngine" = None

    def __init__(self):
        super().__init__()
        _CountingEngine.last = self


def time_simulation(
    repeats: int = REPEATS, observed: bool = False, locate_cache: bool = True
):
    """min-of-``repeats`` wall time of the fixed simulation.

    Returns ``(wall_seconds, events, result)``. With ``observed`` the run
    carries a full Observability (metrics + trace) so the report can state
    what the instrumentation costs when it is actually on; the headline
    ``events_per_second`` number always comes from the disabled path.
    ``locate_cache=False`` switches off the controller's line->location
    memo (``REPRO_LOCATE_CACHE=0``) so the report can quote its speedup.
    """
    config = SystemConfig()
    setup = MitigationSetup(**SETUP)
    traces = make_rate_traces(
        WORKLOADS[WORKLOAD], config, requests=REQUESTS, seed=SEED
    )
    original = system.Engine
    system.Engine = _CountingEngine
    saved_cache_env = os.environ.get("REPRO_LOCATE_CACHE")
    if not locate_cache:
        os.environ["REPRO_LOCATE_CACHE"] = "0"
    try:
        wall = None
        for _ in range(repeats):
            obs = (
                Observability(ObsConfig(metrics=True, trace=True))
                if observed
                else None
            )
            start = time.perf_counter()
            result = system.simulate(
                traces, setup, config, mapping=MAPPING, seed=SEED, obs=obs
            )
            elapsed = time.perf_counter() - start
            wall = elapsed if wall is None else min(wall, elapsed)
        events = _CountingEngine.last._seq
    finally:
        system.Engine = original
        if not locate_cache:
            if saved_cache_env is None:
                os.environ.pop("REPRO_LOCATE_CACHE", None)
            else:
                os.environ["REPRO_LOCATE_CACHE"] = saved_cache_env
    return wall, events, result


def time_backends(repeats: int = REPEATS):
    """min-of-``repeats`` fleet wall time per backend.

    Runs the fixed fleet (``FLEET_SETUPS`` x ``FLEET_SEEDS``) once per
    repeat on each backend — traces are pre-generated outside the timed
    region — and returns ``(scalar_wall, batch_wall, events)``, where
    ``events`` is the scalar event-loop total for the whole fleet (the
    common work unit both throughput figures are quoted in). Asserts the
    two backends agree on every lane's stats, so the bench can never quote
    a speedup for a kernel that has drifted from the oracle.
    """
    config = SystemConfig()
    lanes = []
    for seed in FLEET_SEEDS:
        traces = make_rate_traces(
            WORKLOADS[WORKLOAD], config, requests=FLEET_REQUESTS, seed=seed
        )
        for setup_kwargs in FLEET_SETUPS:
            lanes.append(SimLane(
                traces, MitigationSetup(**setup_kwargs), config,
                MAPPING, seed,
            ))

    # Scalar and batch are timed back to back inside each round (rather
    # than all-scalar-then-all-batch), so a background-load burst that
    # outlives one backend's repeats cannot skew the ratio: each backend's
    # min comes from the quietest round it saw.
    scalar_wall = batch_wall = None
    events = 0
    original = system.Engine
    for _ in range(repeats):
        system.Engine = _CountingEngine
        try:
            lane_events = []
            start = time.perf_counter()
            scalar_results = []
            for lane in lanes:
                scalar_results.append(system.simulate(
                    lane.traces, lane.setup, config, mapping=MAPPING,
                    seed=lane.seed,
                ))
                lane_events.append(_CountingEngine.last._seq)
            elapsed = time.perf_counter() - start
            events = sum(lane_events)
        finally:
            system.Engine = original
        if scalar_wall is None or elapsed < scalar_wall:
            scalar_wall = elapsed

        start = time.perf_counter()
        batch_results = simulate_batch(lanes)
        elapsed = time.perf_counter() - start
        if batch_wall is None or elapsed < batch_wall:
            batch_wall = elapsed

    for scalar_result, batch_result in zip(scalar_results, batch_results):
        assert scalar_result.stats == batch_result.stats, (
            "batch backend diverged from the scalar oracle"
        )
    return scalar_wall, batch_wall, events


def time_lint_full_tree(repeats: int = REPEATS) -> float:
    """min-of-``repeats`` wall time of a full-tree interprocedural lint.

    Runs every pass — per-module and whole-program — over ``src/repro``
    exactly as the CI blocking step does, so the recorded number is the
    cost a PR actually pays. The acceptance budget is 10 s; the call graph
    is built once per run, so regressions here mean either the tree grew a
    lot or an analysis went superlinear.
    """
    from repro.lint import run_lint

    src = os.path.join(REPO_ROOT, "src", "repro")
    wall = None
    for _ in range(repeats):
        start = time.perf_counter()
        run_lint([src], relative_to=REPO_ROOT)
        elapsed = time.perf_counter() - start
        wall = elapsed if wall is None else min(wall, elapsed)
    return wall


def run_smoke() -> dict:
    """Time the fixed simulation once; return the metrics dict.

    The three single-run variants are interleaved round by round (plain,
    observed, no-locate-cache, repeat) for the same reason
    :func:`time_backends` interleaves its backends: every quoted ratio
    compares minima that each had a shot at the same quiet windows, so a
    transient load burst cannot masquerade as overhead.
    """
    wall = obs_wall = nocache_wall = None
    # More rounds than the fleet timing: the single runs are short
    # (~0.5 s), so each needs more shots at an undisturbed window. The
    # plain/no-locate-cache pair additionally *alternates order* between
    # rounds: the cache effect is a few percent, which is under the
    # turbo/thermal drift across one round, so a fixed order would let the
    # ramp masquerade as (or cancel) the speedup. Minima over enough
    # alternated rounds converge to the quiet-window cost of each variant.
    for i in range(4 * REPEATS + 2):
        if i % 2 == 0:
            w, events, result = time_simulation(repeats=1)
            nw, _, _ = time_simulation(repeats=1, locate_cache=False)
        else:
            nw, _, _ = time_simulation(repeats=1, locate_cache=False)
            w, events, result = time_simulation(repeats=1)
        wall = w if wall is None else min(wall, w)
        nocache_wall = nw if nocache_wall is None else min(nocache_wall, nw)
    for _ in range(2 * REPEATS + 1):
        # Interleave a plain run so the obs-overhead ratio also compares
        # minima that shared the same quiet windows.
        ow, obs_events, _ = time_simulation(repeats=1, observed=True)
        w, _, _ = time_simulation(repeats=1)
        obs_wall = ow if obs_wall is None else min(obs_wall, ow)
        wall = min(wall, w)
    scalar_wall, batch_wall, fleet_events = time_backends()
    lint_wall = time_lint_full_tree()
    return {
        "lint_seconds_full_tree": round(lint_wall, 3),
        "sim_fleet_events": fleet_events,
        "sim_events_per_second_scalar": round(fleet_events / scalar_wall, 1),
        "sim_events_per_second_batch": round(fleet_events / batch_wall, 1),
        "sim_batch_speedup": round(scalar_wall / batch_wall, 2),
        "workload": WORKLOAD,
        "setup": SETUP,
        "mapping": MAPPING,
        "requests": REQUESTS,
        "seed": SEED,
        "events": events,
        "wall_seconds": round(wall, 4),
        "events_per_second": round(events / wall, 1),
        "events_per_second_no_locate_cache": round(events / nocache_wall, 1),
        "locate_cache_speedup_pct": round(
            100.0 * (nocache_wall - wall) / nocache_wall, 1
        ),
        "obs_events_per_second": round(obs_events / obs_wall, 1),
        "obs_overhead_pct": round(100.0 * (obs_wall - wall) / wall, 1),
        "sim_cycles": result.stats.cycles,
    }


def write_report(metrics: dict, output: str = OUTPUT) -> None:
    """Merge ``metrics`` into the shared report file.

    ``BENCH_perf.json`` is shared with the security smoke bench, so each
    bench read-merge-updates its own keys instead of clobbering the file.
    """
    merged = {}
    try:
        with open(output) as f:
            existing = json.load(f)
        if isinstance(existing, dict):
            merged.update(existing)
    except (OSError, ValueError):
        pass
    merged.update(metrics)
    with open(output, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")


def test_perf_smoke():
    metrics = run_smoke()
    write_report(metrics)
    # Smoke-level sanity: the run is deterministic, so the event count is a
    # fixed function of the configuration; throughput just has to be alive.
    assert metrics["events"] > 10_000
    assert metrics["events_per_second"] > 1_000
    # The interprocedural lint budget from the static-analysis issue: the
    # whole tree, call graph included, must stay under 10 s.
    assert metrics["lint_seconds_full_tree"] < 10.0


#: The batch kernel must beat the scalar oracle by at least this factor on
#: the mixed fleet — the whole point of shipping a second backend. The
#: floor tracks the *scalar* oracle too: the locate-cache fix sped the
#: denominator up ~20%, compressing the measured ratio from ~3.7x to ~3x,
#: so the floor sits below that with headroom for scheduler noise.
SPEEDUP_FLOOR = 2.5
RETRY_ROUNDS = 4  # measure up to this many times; pass if any round passes


def test_batch_speedup_floor():
    import pytest

    if os.environ.get("REPRO_SKIP_PERF_TESTS", "") == "1":
        pytest.skip("perf tests disabled via REPRO_SKIP_PERF_TESTS=1")
    best = 0.0
    for _ in range(RETRY_ROUNDS):
        scalar_wall, batch_wall, _ = time_backends()
        best = max(best, scalar_wall / batch_wall)
        if best >= SPEEDUP_FLOOR:
            break
    assert best >= SPEEDUP_FLOOR, (
        f"batch backend speedup {best:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )


if __name__ == "__main__":
    metrics = run_smoke()
    write_report(metrics)
    print(json.dumps(metrics, indent=2, sort_keys=True))
    print(f"\nwrote {OUTPUT}")
