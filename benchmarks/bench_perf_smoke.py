"""Perf smoke: events/sec of the simulation kernel on a fixed workload.

Unlike the figure benches, this one measures the *simulator*, not the
simulated system: one fixed small run (bwaves, AutoRFM-4 on Rubix, 2500
requests per core, seed 1), timed end to end, reduced to events processed
per wall-clock second. The numbers land in ``BENCH_perf.json`` at the repo
root so successive checkouts can be compared; regressions to the scheduler
or event-loop hot path show up here first.

Run standalone:  PYTHONPATH=src python benchmarks/bench_perf_smoke.py
"""

from __future__ import annotations

import json
import os
import time

import repro.cpu.system as system
from repro.mc.setup import MitigationSetup
from repro.obs import ObsConfig, Observability
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT = os.path.join(REPO_ROOT, "BENCH_perf.json")

WORKLOAD = "bwaves"
SETUP = dict(mechanism="autorfm", threshold=4, policy="fractal")
MAPPING = "rubix"
REQUESTS = 2500
SEED = 1
REPEATS = 3  # report the fastest repeat: least scheduler noise


class _CountingEngine(Engine):
    """Engine that remembers the last instance so the bench can read
    ``_seq`` (every scheduled event is processed once the heap drains)."""

    last: "_CountingEngine" = None

    def __init__(self):
        super().__init__()
        _CountingEngine.last = self


def time_simulation(
    repeats: int = REPEATS, observed: bool = False, locate_cache: bool = True
):
    """min-of-``repeats`` wall time of the fixed simulation.

    Returns ``(wall_seconds, events, result)``. With ``observed`` the run
    carries a full Observability (metrics + trace) so the report can state
    what the instrumentation costs when it is actually on; the headline
    ``events_per_second`` number always comes from the disabled path.
    ``locate_cache=False`` switches off the controller's line->location
    memo (``REPRO_LOCATE_CACHE=0``) so the report can quote its speedup.
    """
    config = SystemConfig()
    setup = MitigationSetup(**SETUP)
    traces = make_rate_traces(
        WORKLOADS[WORKLOAD], config, requests=REQUESTS, seed=SEED
    )
    original = system.Engine
    system.Engine = _CountingEngine
    saved_cache_env = os.environ.get("REPRO_LOCATE_CACHE")
    if not locate_cache:
        os.environ["REPRO_LOCATE_CACHE"] = "0"
    try:
        wall = None
        for _ in range(repeats):
            obs = (
                Observability(ObsConfig(metrics=True, trace=True))
                if observed
                else None
            )
            start = time.perf_counter()
            result = system.simulate(
                traces, setup, config, mapping=MAPPING, seed=SEED, obs=obs
            )
            elapsed = time.perf_counter() - start
            wall = elapsed if wall is None else min(wall, elapsed)
        events = _CountingEngine.last._seq
    finally:
        system.Engine = original
        if not locate_cache:
            if saved_cache_env is None:
                os.environ.pop("REPRO_LOCATE_CACHE", None)
            else:
                os.environ["REPRO_LOCATE_CACHE"] = saved_cache_env
    return wall, events, result


def run_smoke() -> dict:
    """Time the fixed simulation once; return the metrics dict."""
    wall, events, result = time_simulation()
    obs_wall, obs_events, _ = time_simulation(observed=True)
    nocache_wall, _, _ = time_simulation(locate_cache=False)
    return {
        "workload": WORKLOAD,
        "setup": SETUP,
        "mapping": MAPPING,
        "requests": REQUESTS,
        "seed": SEED,
        "events": events,
        "wall_seconds": round(wall, 4),
        "events_per_second": round(events / wall, 1),
        "events_per_second_no_locate_cache": round(events / nocache_wall, 1),
        "locate_cache_speedup_pct": round(
            100.0 * (nocache_wall - wall) / nocache_wall, 1
        ),
        "obs_events_per_second": round(obs_events / obs_wall, 1),
        "obs_overhead_pct": round(100.0 * (obs_wall - wall) / wall, 1),
        "sim_cycles": result.stats.cycles,
    }


def write_report(metrics: dict, output: str = OUTPUT) -> None:
    """Merge ``metrics`` into the shared report file.

    ``BENCH_perf.json`` is shared with the security smoke bench, so each
    bench read-merge-updates its own keys instead of clobbering the file.
    """
    merged = {}
    try:
        with open(output) as f:
            existing = json.load(f)
        if isinstance(existing, dict):
            merged.update(existing)
    except (OSError, ValueError):
        pass
    merged.update(metrics)
    with open(output, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")


def test_perf_smoke():
    metrics = run_smoke()
    write_report(metrics)
    # Smoke-level sanity: the run is deterministic, so the event count is a
    # fixed function of the configuration; throughput just has to be alive.
    assert metrics["events"] > 10_000
    assert metrics["events_per_second"] > 1_000


if __name__ == "__main__":
    metrics = run_smoke()
    write_report(metrics)
    print(json.dumps(metrics, indent=2, sort_keys=True))
    print(f"\nwrote {OUTPUT}")
