"""Ablation A1: sensitivity to the ALERT retry time t_M.

The design retries a failed ACT after t_M = 4*tRC, the full mitigation
time, which guarantees the retry succeeds (Section IV-A) — one ALERT per
conflicted ACT, deterministic latency, no DoS window. This ablation
quantifies what that determinism costs and buys:

* retrying at 2*tRC is *faster on average* (a conflict late in the
  mitigation window resolves sooner) but an ACT can now fail repeatedly,
  raising ALERT traffic and making worst-case latency non-deterministic —
  exactly the pathology the paper eliminates;
* retrying later than t_M just leaves the bank idle and costs performance.
"""

from _common import pct, report

from repro.analysis.experiments import average, run_workload, slowdown
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup
from repro.sim.config import DramTiming

TRC = DramTiming().trc
VARIANTS = {
    "t_M = 2*tRC (eager retry)": 2 * TRC,
    "t_M = 4*tRC (paper)": 0,  # 0 -> mitigation busy time, exactly 4*tRC
    "t_M = 8*tRC (lazy retry)": 8 * TRC,
}
SIM_WORKLOADS = ("bwaves", "roms", "add", "fotonik3d", "mcf", "scale")


def compute():
    out = {}
    for name, tm in VARIANTS.items():
        setup = MitigationSetup(
            "autorfm", threshold=4, policy="fractal", tm_retry_cycles=tm
        )
        slow = average(
            [(wl, slowdown(wl, setup, "zen")) for wl in SIM_WORKLOADS]
        )
        alerts = average(
            [
                (wl, run_workload(wl, setup, "zen").stats.alerts_per_act)
                for wl in SIM_WORKLOADS
            ]
        )
        out[name] = (slow, alerts)
    return out


def test_ablation_tm_sensitivity(benchmark):
    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "ablation_tm",
        render_table(
            ["retry time", "avg slowdown", "ALERTs per ACT"],
            [[name, pct(s), pct(a)] for name, (s, a) in out.items()],
            title="Ablation A1: ALERT retry time t_M (Zen mapping, 6 workloads)",
        ),
    )
    eager_slow, eager_alerts = out["t_M = 2*tRC (eager retry)"]
    paper_slow, paper_alerts = out["t_M = 4*tRC (paper)"]
    lazy_slow, lazy_alerts = out["t_M = 8*tRC (lazy retry)"]

    # Lazy retry wastes bank idle time: strictly worse than the paper's t_M.
    assert lazy_slow > paper_slow
    # Eager retry re-fails: each conflicted ACT raises more ALERTs. With the
    # paper's t_M an ACT fails at most ~once.
    assert eager_alerts > 1.3 * paper_alerts
    # What determinism costs: eager retry may be somewhat faster on average,
    # but not dramatically so — the paper trades a few points for a
    # guaranteed single retry and no DoS window.
    assert paper_slow - eager_slow < 0.06
