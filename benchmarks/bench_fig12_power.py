"""Fig. 12: DRAM power for baseline, Rubix, AutoRFM-8, and AutoRFM-4.

Paper: Rubix's extra activations add ~36 mW; mitigations add ~28 mW
(AutoRFM-8) and ~55 mW (AutoRFM-4). We assert the component shape: the
Rubix ACT overhead is positive, AutoRFM-4's mitigation power is ~2x
AutoRFM-8's, and baseline/Rubix burn nothing on mitigation.
"""

from _common import report

from repro.analysis.experiments import average, run_workload, system_config
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup
from repro.power.model import DramPowerModel
from repro.workloads.catalog import WORKLOADS

CONFIGS = [
    ("baseline", MitigationSetup("none"), "zen"),
    ("rubix", MitigationSetup("none"), "rubix"),
    ("autorfm8", MitigationSetup("autorfm", threshold=8), "rubix"),
    ("autorfm4", MitigationSetup("autorfm", threshold=4), "rubix"),
]


def compute():
    model = DramPowerModel(system_config())
    out = {}
    for tag, setup, mapping in CONFIGS:
        breakdowns = [
            model.breakdown(run_workload(name, setup, mapping).stats)
            for name in WORKLOADS
        ]
        n = len(breakdowns)
        out[tag] = {
            "act": sum(b.act_mw for b in breakdowns) / n,
            "rw": sum(b.rw_mw for b in breakdowns) / n,
            "other": sum(b.other_mw for b in breakdowns) / n,
            "refresh": sum(b.refresh_mw for b in breakdowns) / n,
            "mitig": sum(b.mitig_mw for b in breakdowns) / n,
        }
        out[tag]["total"] = sum(out[tag].values())
    return out


def test_fig12_power(benchmark):
    power = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [tag] + [f"{power[tag][k]:.0f}" for k in
                 ("act", "rw", "other", "refresh", "mitig", "total")]
        for tag, _, _ in CONFIGS
    ]
    text = render_table(
        ["config", "ACT mW", "RD/WR mW", "other mW", "refresh mW",
         "mitig mW", "total mW"],
        rows,
        title="Fig. 12: average DRAM power breakdown (21 workloads)",
    )
    # The paper attributes Rubix's overhead to its extra activations, so
    # compare the activation component in isolation (the read/write burst
    # component is identical work spread over marginally different runtime).
    rubix_delta = power["rubix"]["act"] - power["baseline"]["act"]
    auto8_mitig = power["autorfm8"]["mitig"]
    auto4_mitig = power["autorfm4"]["mitig"]
    text += (
        f"\nRubix ACT overhead: {rubix_delta:.0f} mW (paper ~36 mW)"
        f"\nAutoRFM-8 mitigation: {auto8_mitig:.0f} mW (paper ~28 mW)"
        f"\nAutoRFM-4 mitigation: {auto4_mitig:.0f} mW (paper ~55 mW)"
    )
    report("fig12_power", text)

    assert power["baseline"]["mitig"] == 0.0
    assert power["rubix"]["mitig"] == 0.0
    assert rubix_delta > 0  # extra activations cost power
    assert auto4_mitig > auto8_mitig > 0
    assert 1.5 < auto4_mitig / auto8_mitig < 2.6  # ~2x mitigation rate
    # Order-of-magnitude agreement with the paper's overheads.
    assert 10 < auto4_mitig < 150
    assert 5 < rubix_delta < 150
