"""Table V: workload characteristics (ACT-PKI and ACT-per-tREFI per bank).

Measured on the unmitigated Zen baseline. The synthetic generators are
calibrated per workload class, so we assert rank-order fidelity and a loose
per-workload agreement, not exact values.
"""

from _common import report

from repro.analysis.experiments import run_workload, system_config
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup
from repro.workloads.catalog import WORKLOADS


def compute():
    trefi = system_config().timing.trefi
    out = {}
    for name in WORKLOADS:
        stats = run_workload(name, MitigationSetup("none"), "zen").stats
        out[name] = (stats.act_pki, stats.act_per_trefi(trefi))
    return out


def test_table5_workload_characteristics(benchmark):
    measured = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for name, workload in WORKLOADS.items():
        act_pki, act_trefi = measured[name]
        rows.append(
            [
                workload.suite,
                name,
                workload.paper_act_pki,
                f"{act_pki:.1f}",
                workload.paper_act_per_trefi,
                f"{act_trefi:.1f}",
            ]
        )
    report(
        "table5_workloads",
        render_table(
            ["suite", "workload", "ACT-PKI paper", "ACT-PKI ours",
             "ACT/tREFI paper", "ACT/tREFI ours"],
            rows,
            title="Table V: workload characteristics (Zen baseline)",
        ),
    )

    # Shape: intensity rank order is preserved across the extremes.
    assert measured["ConnComp"][0] > measured["bwaves"][0] > measured["wrf"][0]
    # Every workload's ACT-PKI within 2x of the paper's.
    for name, workload in WORKLOADS.items():
        ratio = measured[name][0] / workload.paper_act_pki
        assert 0.5 < ratio < 2.0, (name, ratio)
    # High-intensity workloads land in the paper's ACT/tREFI band (~20-35).
    for name in ("bwaves", "lbm", "ConnComp", "PageRank"):
        assert 10 < measured[name][1] < 45, name
