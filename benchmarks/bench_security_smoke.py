"""Security smoke: attack activations/sec of the Monte-Carlo engines.

Times the batched numpy engine against the scalar ``run_attack`` oracle on
the acceptance workload — a double-sided pattern of 64k activations
replayed across 1000 seeds — and records both rates (plus their ratio)
into ``BENCH_perf.json`` alongside the simulator smoke numbers. The
scalar backend is timed on a small seed slice (its per-seed cost is
constant, so the rate generalizes); the numpy backend runs the full
thousand-seed batch it exists for.

Run standalone:  PYTHONPATH=src python benchmarks/bench_security_smoke.py
"""

from __future__ import annotations

import json
import os
import time

import pytest

from bench_perf_smoke import OUTPUT, write_report
from repro.security.kernels import (
    FractalPolicySpec,
    MintSpec,
    build_pattern,
    run_attack_batch,
)

SEEDS = 1000
SCALAR_SEEDS = 8  # per-seed cost is flat; a slice pins the rate
ACTS = 64_000
VICTIM = 70_000
WINDOW = 4

#: Acceptance floor: the vectorized engine must beat the scalar oracle by
#: at least this factor on the smoke workload.
MIN_SPEEDUP = 10.0

skip_perf = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_TESTS", "") == "1",
    reason="perf tests disabled via REPRO_SKIP_PERF_TESTS=1",
)


def _rate(backend: str, seeds: int) -> float:
    pattern = build_pattern("double_sided", [VICTIM], ACTS)
    start = time.perf_counter()
    run_attack_batch(
        [pattern],
        MintSpec(WINDOW),
        FractalPolicySpec(),
        window=WINDOW,
        seeds=seeds,
        backend=backend,
        collect_pressure=False,
    )
    wall = time.perf_counter() - start
    return (seeds * ACTS) / wall


def run_smoke() -> dict:
    """Time both backends once; return the metrics dict (merged keys)."""
    numpy_rate = _rate("numpy", SEEDS)
    scalar_rate = _rate("scalar", SCALAR_SEEDS)
    return {
        "security_attack": "double_sided",
        "security_acts": ACTS,
        "security_seeds": SEEDS,
        "security_scalar_seeds": SCALAR_SEEDS,
        "attack_activations_per_second": {
            "numpy": round(numpy_rate, 1),
            "scalar": round(scalar_rate, 1),
        },
        "security_speedup": round(numpy_rate / scalar_rate, 1),
    }


@skip_perf
def test_security_smoke():
    metrics = run_smoke()
    write_report(metrics)
    rates = metrics["attack_activations_per_second"]
    assert rates["numpy"] > 0 and rates["scalar"] > 0
    assert metrics["security_speedup"] >= MIN_SPEEDUP, (
        f"numpy backend only {metrics['security_speedup']}x scalar "
        f"(floor {MIN_SPEEDUP}x)"
    )


if __name__ == "__main__":
    metrics = run_smoke()
    write_report(metrics)
    print(json.dumps(metrics, indent=2, sort_keys=True))
    print(f"\nwrote {OUTPUT}")
