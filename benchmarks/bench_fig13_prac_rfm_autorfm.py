"""Fig. 13: average slowdown of PRAC+ABO, RFM, and AutoRFM vs threshold.

Paper shape: PRAC costs ~4 % at every threshold (longer tRC); RFM is free
above ~700 but explodes below 300; AutoRFM stays at 2-3 % down to TRH-D 74.
Each mechanism's x-coordinate is the TRH-D its parameter tolerates
(Appendix A for MINT-based RFM/AutoRFM; the ABO target for PRAC).
"""

from _common import pct, report

from repro.analysis.charts import render_linechart
from repro.analysis.experiments import average, slowdown_matrix
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup
from repro.security.mint_model import mint_tolerated_trhd
from repro.workloads.catalog import WORKLOADS

RFM_WINDOWS = (4, 8, 16, 32)
AUTORFM_WINDOWS = (4, 6, 8)
PRAC_TARGETS = (74, 180, 700)


def compute():
    # Batch the whole mechanism x threshold x workload sweep through the
    # shared runner (parallel workers + persistent cache), then reduce
    # each configuration to its per-workload average.
    specs = []
    for th in RFM_WINDOWS:
        specs.append((f"rfm{th}", MitigationSetup("rfm", threshold=th), "zen"))
    for th in AUTORFM_WINDOWS:
        setup = MitigationSetup("autorfm", threshold=th, policy="fractal")
        specs.append((f"autorfm{th}", setup, "rubix"))
    for trhd in PRAC_TARGETS:
        setup = MitigationSetup("prac", prac_trh_d=trhd)
        specs.append((f"prac{trhd}", setup, "zen"))
    matrix = slowdown_matrix(WORKLOADS, specs)

    def avg(label):
        return average(list(matrix[label].items()))

    series = {"rfm": [], "autorfm": [], "prac": []}
    for th in RFM_WINDOWS:
        trhd = mint_tolerated_trhd(th, recursive=True)
        series["rfm"].append((trhd, avg(f"rfm{th}")))
    for th in AUTORFM_WINDOWS:
        trhd = mint_tolerated_trhd(th, recursive=False)
        series["autorfm"].append((trhd, avg(f"autorfm{th}")))
    for trhd in PRAC_TARGETS:
        series["prac"].append((trhd, avg(f"prac{trhd}")))
    return series


def test_fig13_mechanism_comparison(benchmark):
    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for name, points in series.items():
        for trhd, slow in sorted(points):
            rows.append([name, trhd, pct(slow)])
    text = render_table(
        ["mechanism", "tolerated TRH-D", "avg slowdown"],
        rows,
        title="Fig. 13: PRAC vs RFM vs AutoRFM across thresholds",
    )
    text += "\n\n" + render_linechart(
        [(trhd, 100 * slow) for trhd, slow in series["rfm"]],
        title="RFM slowdown (%) vs tolerated TRH-D",
    )
    report("fig13_prac_rfm_autorfm", text)

    prac = dict(series["prac"])
    rfm = sorted(series["rfm"])  # ascending threshold
    autorfm = sorted(series["autorfm"])

    # PRAC: a flat tax at every threshold (paper ~4 %).
    assert all(0.01 < s < 0.12 for s in prac.values())
    spread = max(prac.values()) - min(prac.values())
    assert spread < 0.05

    # RFM: cheap at high thresholds, explosive at sub-100.
    assert rfm[-1][1] < 0.02
    assert rfm[0][1] > 0.20

    # AutoRFM: scales to sub-100 with slowdown below PRAC's flat tax.
    lowest_trhd, lowest_slow = autorfm[0]
    assert lowest_trhd < 100
    assert lowest_slow < 0.08
    # At the lowest threshold AutoRFM is far cheaper than RFM.
    assert rfm[0][1] / max(lowest_slow, 1e-9) > 3.0
