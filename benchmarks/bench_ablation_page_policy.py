"""Ablation A4: closed-page (with the tRAS hit window) vs open-page.

Section III: "For this mapping, closed-page policy performs better than an
open-page policy (our design permits row-buffer hits if a later request
gets serviced within tRAS)." Open-page harvests more row hits, but under
the bank-striped Zen mapping most revisits arrive after the useful window
and a conflicting ACT must then pay an on-demand precharge on the critical
path — a net loss.
"""

import dataclasses

from _common import pct, report

from repro.analysis.tables import render_table
from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.sim.config import SystemConfig
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces

SIM_WORKLOADS = ("bwaves", "roms", "mcf", "add", "fotonik3d", "omnetpp")
REQUESTS = 2500


def compute():
    closed = SystemConfig()
    opened = dataclasses.replace(closed, page_policy="open")
    rows = []
    speedups = []
    for name in SIM_WORKLOADS:
        traces = make_rate_traces(WORKLOADS[name], closed, REQUESTS)
        c = simulate(traces, MitigationSetup("none"), closed, "zen", seed=1)
        o = simulate(traces, MitigationSetup("none"), opened, "zen", seed=1)
        speedup = o.stats.weighted_speedup(c.stats)
        speedups.append(speedup)
        rows.append(
            [
                name,
                pct(c.stats.row_hit_rate),
                pct(o.stats.row_hit_rate),
                f"{speedup:.3f}",
            ]
        )
    return rows, speedups


def test_ablation_page_policy(benchmark):
    rows, speedups = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "ablation_page_policy",
        render_table(
            ["workload", "hit rate closed", "hit rate open",
             "open-page speedup"],
            rows,
            title="Ablation A4: open-page vs the paper's closed-page policy",
        ),
    )
    # Open-page always finds more hits ...
    for _, closed_hits, open_hits, _ in rows:
        assert float(open_hits.rstrip("%")) > float(closed_hits.rstrip("%"))
    # ... but performs worse on average under the Zen mapping (the paper's
    # stated reason for choosing closed-page).
    mean = sum(speedups) / len(speedups)
    assert mean < 1.0
    assert all(s > 0.85 for s in speedups)  # and the loss is moderate