"""Replication: the headline numbers with 95 % confidence intervals.

Every simulated number in this suite is one draw of a stochastic system
(trace generation, MINT slots, cipher keys). This bench replicates the
headline comparison over independent seeds and reports mean +- CI, and it
asserts the paper's qualitative conclusion separates cleanly: the RFM-4 and
AutoRFM-4 intervals do not overlap.
"""

from _common import report

from repro.analysis.statistics import seed_study
from repro.analysis.tables import render_table
from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.sim.config import SystemConfig
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces

SEEDS = (1, 2, 3)
SIM_WORKLOADS = ("bwaves", "roms", "mcf", "add")
REQUESTS = 2000


def metric_factory(setup, mapping):
    config = SystemConfig()

    def metric(seed):
        values = []
        for name in SIM_WORKLOADS:
            traces = make_rate_traces(WORKLOADS[name], config, REQUESTS, seed)
            base = simulate(
                traces, MitigationSetup("none"), config, "zen", seed=seed
            )
            run = simulate(traces, setup, config, mapping, seed=seed)
            values.append(run.slowdown_vs(base))
        return sum(values) / len(values)

    return metric


def compute():
    rfm = seed_study(
        metric_factory(MitigationSetup("rfm", threshold=4), "zen"), SEEDS
    )
    auto = seed_study(
        metric_factory(
            MitigationSetup("autorfm", threshold=4, policy="fractal"), "rubix"
        ),
        SEEDS,
    )
    return rfm, auto


def test_seed_stability(benchmark):
    rfm, auto = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "seed_stability",
        render_table(
            ["configuration", "slowdown mean", "95% CI", "replicas"],
            [
                ["RFM-4", f"{rfm.mean:.1%}", f"+-{rfm.ci95:.1%}", rfm.n],
                ["AutoRFM-4", f"{auto.mean:.1%}", f"+-{auto.ci95:.1%}", auto.n],
            ],
            title=f"Seed stability over {len(SEEDS)} replicas (4 workloads)",
        ),
    )
    # The qualitative conclusion is resolvable at 3 replicas: intervals
    # do not overlap and the gap is wide.
    assert not rfm.overlaps(auto)
    assert rfm.low > auto.high
    assert rfm.mean > 3 * auto.mean
    # And the estimates themselves are tight (seed noise is small).
    assert rfm.ci95 < 0.5 * rfm.mean