"""Table I: DDR5 timing parameters used throughout the evaluation."""

from _common import report

from repro.analysis.tables import render_table
from repro.sim.config import DramTiming

PAPER_TABLE1 = {
    "tRCD": 12.0,
    "tRP": 12.0,
    "tRAS": 36.0,
    "tRC": 48.0,
    "tREFW": 32_000_000.0,
    "tREFI": 3900.0,
    "tRFC": 410.0,
    "tRFM": 205.0,
}


def test_table1_timings(benchmark):
    timing = benchmark.pedantic(DramTiming, rounds=1, iterations=1)
    ours = {
        "tRCD": timing.trcd_ns,
        "tRP": timing.trp_ns,
        "tRAS": timing.tras_ns,
        "tRC": timing.trc_ns,
        "tREFW": timing.trefw_ns,
        "tREFI": timing.trefi_ns,
        "tRFC": timing.trfc_ns,
        "tRFM": timing.trfm_ns,
    }
    rows = [
        [name, paper, ours[name], timing_cycles(timing, name)]
        for name, paper in PAPER_TABLE1.items()
    ]
    report(
        "table1_timings",
        render_table(
            ["parameter", "paper (ns)", "ours (ns)", "cycles @4GHz"],
            rows,
            title="Table I: DRAM timings (DDR5)",
        ),
    )
    assert ours == PAPER_TABLE1


def timing_cycles(timing, name):
    return {
        "tRCD": timing.trcd,
        "tRP": timing.trp,
        "tRAS": timing.tras,
        "tRC": timing.trc,
        "tREFW": timing.trefw,
        "tREFI": timing.trefi,
        "tRFC": timing.trfc,
        "tRFM": timing.trfm,
    }[name]
