"""Sweep-service smoke: daemon job throughput and warm-cache hit latency.

Starts a real :class:`~repro.svc.SweepService` on a scratch socket,
pushes a small batch of distinct jobs through it, and records

* ``svc_jobs_per_second`` — end-to-end daemon throughput (submit through
  result) for cold jobs executed by the worker pool, and
* ``svc_hit_latency_ms`` — the round-trip latency of answering a job from
  the warm shared cache (no worker involved),

into ``BENCH_perf.json`` via the shared read-merge-update helper, next to
the simulator and security smoke numbers.

Run standalone:  PYTHONPATH=src python benchmarks/bench_svc_smoke.py
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time

import pytest

from bench_perf_smoke import OUTPUT, write_report
from repro.analysis.runner import Job
from repro.mc.setup import MitigationSetup
from repro.svc import SweepClient, SweepService

#: Cold batch: distinct seeds so nothing dedups or hits.
COLD_JOBS = 4
#: Warm round-trips against one cached entry.
HIT_ROUNDS = 20
REQUESTS = 300
WORKERS = 2
SETUP = MitigationSetup(mechanism="autorfm", tracker="mint", threshold=4)

skip_perf = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_TESTS", "") == "1",
    reason="perf tests disabled via REPRO_SKIP_PERF_TESTS=1",
)


def run_smoke() -> dict:
    """Drive one daemon through a cold batch and a warm hit loop."""
    scratch = tempfile.mkdtemp(prefix="rsvc-", dir="/tmp")
    service = SweepService(
        scratch + "/b.sock",
        workers=WORKERS,
        requests=REQUESTS,
        cache_dir=scratch + "/cache",
        poll_interval=0.02,
    )
    thread = threading.Thread(target=service.run, daemon=True)
    thread.start()
    if not service.wait_ready(10):
        raise RuntimeError("sweep-service daemon failed to start")
    try:
        jobs = [
            Job("xz", SETUP, "rubix", REQUESTS, seed)
            for seed in range(1, COLD_JOBS + 1)
        ]
        with SweepClient(service.socket_path) as client:
            start = time.perf_counter()
            ids = client.submit(jobs)
            for job_id in ids:
                client.result(job_id, wait=True, timeout=600)
            cold_wall = time.perf_counter() - start

            # Warm loop: resubmitting the first job answers from the
            # shared cache without touching a worker.
            hit_start = time.perf_counter()
            for _ in range(HIT_ROUNDS):
                (hit_id,) = client.submit([jobs[0]])
                response = client.result(hit_id, wait=True, timeout=60)
                assert response["from_cache"]
            hit_wall = time.perf_counter() - hit_start

            counters = client.cache_stats()["metrics"]["counters"]
        assert counters["svc.cache_hits"] >= HIT_ROUNDS
    finally:
        service.stop()
        thread.join(timeout=15)
        shutil.rmtree(scratch, ignore_errors=True)

    return {
        "svc_workers": WORKERS,
        "svc_cold_jobs": COLD_JOBS,
        "svc_requests": REQUESTS,
        "svc_jobs_per_second": round(COLD_JOBS / cold_wall, 3),
        "svc_hit_latency_ms": round(1000.0 * hit_wall / HIT_ROUNDS, 2),
    }


@skip_perf
def test_svc_smoke():
    metrics = run_smoke()
    write_report(metrics)
    assert metrics["svc_jobs_per_second"] > 0
    # A warm hit never runs a simulation: it must answer in well under a
    # worker-spawn's worth of time.
    assert metrics["svc_hit_latency_ms"] < 5_000


if __name__ == "__main__":
    metrics = run_smoke()
    write_report(metrics)
    print(json.dumps(metrics, indent=2, sort_keys=True))
    print(f"\nwrote {OUTPUT}")
