"""Cross-validation: first-order analytical model vs the simulator.

For each workload the model predicts the ALERT rate (SAUM duty diluted over
256 subarrays) and the RFM bank overhead from the *measured* ACT-per-tREFI;
the bench checks the simulator lands in the same regime. Disagreement here
would mean either the scheduler or the model is wrong — it is the repo's
internal consistency audit.
"""

from _common import report

from repro.analysis.experiments import run_workload, system_config
from repro.analysis.model import autorfm_alert_rate
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup

SIM_WORKLOADS = ("bwaves", "lbm", "roms", "mcf", "PageRank", "add")


def compute():
    config = system_config()
    trefi = config.timing.trefi
    rows = []
    for name in SIM_WORKLOADS:
        auto = run_workload(
            name, MitigationSetup("autorfm", threshold=4), "rubix"
        )
        rate = auto.stats.act_per_trefi(trefi)
        predicted = autorfm_alert_rate(rate, 4, config.subarrays_per_bank)
        measured = auto.stats.alerts_per_act
        rows.append((name, rate, predicted, measured))
    return rows


def test_model_vs_simulator(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "model_validation",
        render_table(
            ["workload", "ACT/tREFI", "model ALERT/ACT", "sim ALERT/ACT"],
            [
                [name, f"{rate:.1f}", f"{pred:.4%}", f"{meas:.4%}"]
                for name, rate, pred, meas in rows
            ],
            title="First-order model vs simulator (AutoRFM-4 on Rubix)",
        ),
    )
    for name, rate, predicted, measured in rows:
        # Same regime within ~4x: the model ignores burstiness and retried
        # ACTs, so exact agreement is not expected — order of magnitude is.
        assert measured < 4 * predicted + 0.002, name
        assert measured > predicted / 4 - 0.002, name