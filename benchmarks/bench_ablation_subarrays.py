"""Ablation A2: sensitivity to the number of subarrays per bank.

AutoRFM's conflict probability under randomized mapping is ~1/subarrays, so
fewer subarrays mean more ALERTs. The paper assumes 256 (Table IV); DRAM
parts with coarser subarray structure pay more.
"""

import dataclasses

from _common import pct, report

from repro.analysis.tables import render_table
from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.sim.config import SystemConfig
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces

SUBARRAY_COUNTS = (32, 128, 256, 512)
SIM_WORKLOADS = ("bwaves", "roms", "add", "mcf")
REQUESTS = 2000


def compute():
    out = {}
    for count in SUBARRAY_COUNTS:
        config = dataclasses.replace(SystemConfig(), subarrays_per_bank=count)
        setup = MitigationSetup("autorfm", threshold=4, policy="fractal")
        slowdowns, alerts = [], []
        for name in SIM_WORKLOADS:
            traces = make_rate_traces(WORKLOADS[name], config, REQUESTS)
            base = simulate(traces, MitigationSetup("none"), config, "zen", 1)
            run = simulate(traces, setup, config, "rubix", 1)
            slowdowns.append(run.slowdown_vs(base))
            alerts.append(run.stats.alerts_per_act)
        out[count] = (
            sum(slowdowns) / len(slowdowns),
            sum(alerts) / len(alerts),
        )
    return out


def test_ablation_subarrays(benchmark):
    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "ablation_subarrays",
        render_table(
            ["subarrays/bank", "avg slowdown", "ALERT/ACT"],
            [[count, pct(s), pct(a)] for count, (s, a) in out.items()],
            title="Ablation A2: subarray count (AutoRFM-4 on Rubix)",
        ),
    )
    # ALERT rate and slowdown fall monotonically with the subarray count
    # (the raw conflict probability is ~1/subarrays; retried ACTs and the
    # SAUM duty cycle damp the measured slope).
    alerts = [out[c][1] for c in SUBARRAY_COUNTS]
    assert all(a >= b for a, b in zip(alerts, alerts[1:]))
    assert out[32][1] / max(out[512][1], 1e-6) > 2.0
    # With 256 subarrays the conflict rate is already below 1 %.
    assert out[256][1] < 0.01
    # Coarse subarray structure (32) is markedly more expensive.
    assert out[32][0] > 1.5 * out[256][0]
