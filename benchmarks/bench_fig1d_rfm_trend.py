"""Fig. 1(d): slowdown of RFM as the Rowhammer threshold decreases.

The x-axis maps each RFMTH to the TRH-D that MINT + recursive mitigation
tolerates at that window (Appendix A); the y-axis is the average measured
slowdown (shares Fig. 3's simulations via the run cache).
"""

from _common import report

from repro.analysis.experiments import average, slowdown, workload_rows
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup
from repro.security.mint_model import mint_tolerated_trhd

THRESHOLDS = (32, 16, 8, 4)  # decreasing tolerated TRH


def compute():
    points = []
    for th in THRESHOLDS:
        trhd = mint_tolerated_trhd(th, recursive=True)
        setup = MitigationSetup("rfm", threshold=th)
        avg = average(workload_rows(lambda wl, s=setup: slowdown(wl, s)))
        points.append((trhd, th, avg))
    return points


def test_fig1d_rfm_trend(benchmark):
    points = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "fig1d_rfm_trend",
        render_table(
            ["tolerated TRH-D", "RFMTH", "avg slowdown"],
            [[trhd, th, f"{s:.1%}"] for trhd, th, s in points],
            title="Fig. 1d: RFM slowdown as thresholds reduce",
        ),
    )
    slowdowns = [s for _, _, s in points]
    # Shape: slowdown explodes as the tolerated threshold shrinks.
    assert all(a < b for a, b in zip(slowdowns, slowdowns[1:]))
    assert slowdowns[0] < 0.02  # ~free at TRH-D ~650
    assert slowdowns[-1] > 0.20  # unacceptable at sub-100
