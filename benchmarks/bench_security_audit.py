"""End-to-end security audit: the threat model checked against the full
simulator (Section II-A).

A deliberate double-sided hammer (paced past the row-hit window, aimed
through the mapping's inverse — the threat model's strongest attacker) runs
against the complete Table IV system. The command log then re-derives every
row's unmitigated hammer pressure. Pass criterion: with AutoRFM-4 the worst
pressure stays far below the analytical TRH-D operating point, while the
unmitigated system lets it grow linearly with the attack.
"""

from _common import report

from repro.analysis.tables import render_table
from repro.cpu.system import build_mapping, simulate
from repro.mc.setup import MitigationSetup
from repro.security.audit import audit_hammer_pressure
from repro.security.mint_model import mint_tolerated_trhd
from repro.sim.cmdlog import CommandLog
from repro.sim.config import SystemConfig
from repro.workloads.adversarial import hammer_trace
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces

ATTACK_ACTS = 6000

VARIANTS = {
    "no mitigation": MitigationSetup("none"),
    "AutoRFM-4 + FM": MitigationSetup("autorfm", threshold=4, policy="fractal"),
    "AutoRFM-4 + RM": MitigationSetup(
        "autorfm", threshold=4, policy="recursive"
    ),
    "AutoRFM-8 + FM": MitigationSetup("autorfm", threshold=8, policy="fractal"),
}


def compute():
    config = SystemConfig()
    mapping = build_mapping("rubix", config, seed=1)
    attacker = hammer_trace(
        mapping, [70_000, 70_002], num_requests=ATTACK_ACTS, gap=700
    )
    victims = make_rate_traces(WORKLOADS["xz"], config, 1500)[1:]

    out = {}
    for tag, setup in VARIANTS.items():
        log = CommandLog()
        simulate(
            [attacker] + victims, setup, config, "rubix", seed=1,
            command_log=log,
        )
        audit = audit_hammer_pressure(log, config)
        out[tag] = audit
    return out


def test_security_audit(benchmark):
    audits = benchmark.pedantic(compute, rounds=1, iterations=1)
    trhd_fm = mint_tolerated_trhd(4, recursive=False)
    rows = [
        [tag, f"{a.max_pressure:.0f}", a.activations, a.victim_refreshes]
        for tag, a in audits.items()
    ]
    text = render_table(
        ["configuration", "worst row pressure", "ACTs", "victim refreshes"],
        rows,
        title=(
            f"End-to-end hammer audit ({ATTACK_ACTS}-ACT double-sided "
            "attack + 7 benign cores)"
        ),
    )
    text += (
        f"\nanalytical operating point (MINT-4 + FM, 10K-yr MTTF): "
        f"TRH-D {trhd_fm}"
    )
    report("security_audit", text)

    unmitigated = audits["no mitigation"]
    fm = audits["AutoRFM-4 + FM"]
    # Unprotected: pressure grows with the attack budget.
    assert unmitigated.max_pressure > 0.5 * ATTACK_ACTS
    assert unmitigated.victim_refreshes == 0
    # Every mitigated variant crushes it by orders of magnitude.
    for tag, audit in audits.items():
        if tag == "no mitigation":
            continue
        assert audit.victim_refreshes > 0, tag
        assert audit.max_pressure < unmitigated.max_pressure / 20, tag
    # The short-horizon worst case sits well below the analytical TRH-D
    # operating point (which covers the 1e-18 tail, not the bulk).
    assert fm.max_pressure < 2 * trhd_fm
    # AutoRFM-8 mitigates half as often: weakly more pressure than AutoRFM-4.
    assert (
        audits["AutoRFM-8 + FM"].max_pressure
        >= audits["AutoRFM-4 + FM"].max_pressure - 5
    )