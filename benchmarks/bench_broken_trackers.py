"""Security sweep across the tracker zoo (Sections I, II-D).

Replays two attack classes against every implemented tracker and reports
the worst unmitigated hammer pressure. The paper's premise in one table:
vendor-style deterministic TRR is broken by sampling-synchronized patterns,
while the secure low-cost trackers (MINT, PrIDE, PARFM) and the
deterministic heavyweights (Mithril, Graphene) bound the pressure.
"""

import numpy as np
from _common import report

from repro.analysis.tables import render_table
from repro.core.mitigation import FractalMitigation
from repro.security.montecarlo import run_attack
from repro.trackers import (
    GrapheneTracker,
    MintTracker,
    MithrilTracker,
    ParfmTracker,
    PrideTracker,
    TrrTracker,
)

ROWS = 1 << 17
ACTS = 40_000
TARGET = 50_000
WINDOW = 4


def make_trackers():
    def rng(seed):
        return np.random.default_rng(seed)

    return {
        "MINT-4": MintTracker(window=4, rng=rng(1)),
        "PrIDE (p=1/4)": PrideTracker(0.25, rng(2)),
        "PARFM-4": ParfmTracker(window=4, rng=rng(3)),
        "Mithril-1K": MithrilTracker(entries=1024, rng=rng(4)),
        "Graphene": GrapheneTracker(entries=256, mitigation_count=16, rng=rng(5)),
        "TRR (broken)": TrrTracker(rng(6), entries=4, sample_period=4),
    }


def double_sided_pattern():
    return [TARGET - 1 if i % 2 else TARGET + 1 for i in range(ACTS)]


def sampling_sync_pattern():
    pattern = []
    i = 0
    while len(pattern) < ACTS:
        pattern.extend(
            [TARGET - 1, TARGET + 1, TARGET - 1, TARGET + 10_000 + 2 * i]
        )
        i += 1
    return pattern[:ACTS]


def compute():
    results = {}
    for attack_name, pattern in (
        ("double-sided", double_sided_pattern()),
        ("sampling-sync", sampling_sync_pattern()),
    ):
        for tracker_name, tracker in make_trackers().items():
            policy = FractalMitigation(ROWS, np.random.default_rng(99))
            outcome = run_attack(pattern, tracker, policy, window=WINDOW)
            results[(tracker_name, attack_name)] = outcome.pressure.get(
                TARGET, 0.0
            )
    return results


def test_tracker_security_sweep(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    trackers = sorted({t for t, _ in results})
    rows = [
        [t, f"{results[(t, 'double-sided')]:.0f}",
         f"{results[(t, 'sampling-sync')]:.0f}"]
        for t in trackers
    ]
    report(
        "broken_trackers",
        render_table(
            ["tracker", "double-sided pressure", "sampling-sync pressure"],
            rows,
            title=(
                f"Tracker security: worst victim pressure after {ACTS} "
                "attack ACTs (lower is better)"
            ),
        ),
    )

    secure = ("MINT-4", "PrIDE (p=1/4)", "PARFM-4", "Mithril-1K", "Graphene")
    for name in secure:
        for attack in ("double-sided", "sampling-sync"):
            assert results[(name, attack)] < 500, (name, attack)
    # The vendor-style deterministic sampler is broken by the synchronized
    # pattern (pressure grows with the attack budget) ...
    assert results[("TRR (broken)", "sampling-sync")] > 5_000
    # ... even though it looks fine against the naive pattern.
    assert results[("TRR (broken)", "double-sided")] < 500