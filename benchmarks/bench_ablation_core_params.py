"""Ablation A5: robustness of the headline comparison to core parameters.

The paper's conclusion (AutoRFM ~10x cheaper than RFM at threshold 4)
should not hinge on the exact MLP configuration of the cores. Sweep the
MSHR count and ROB size around the Table IV point and check the RFM-4 /
AutoRFM-4 gap survives everywhere.
"""

import dataclasses

from _common import pct, report

from repro.analysis.tables import render_table
from repro.cpu.system import simulate
from repro.mc.setup import MitigationSetup
from repro.sim.config import SystemConfig
from repro.workloads.catalog import WORKLOADS
from repro.workloads.rate import make_rate_traces

SIM_WORKLOADS = ("bwaves", "roms", "mcf", "add")
REQUESTS = 2000

VARIANTS = {
    "MSHR 4, ROB 128": dict(mshrs_per_core=4, rob_size=128),
    "MSHR 8, ROB 256 (Table IV)": dict(mshrs_per_core=8, rob_size=256),
    "MSHR 16, ROB 512": dict(mshrs_per_core=16, rob_size=512),
}


def compute():
    out = {}
    for tag, overrides in VARIANTS.items():
        config = dataclasses.replace(SystemConfig(), **overrides)
        rfm_vals, auto_vals = [], []
        for name in SIM_WORKLOADS:
            traces = make_rate_traces(WORKLOADS[name], config, REQUESTS)
            base = simulate(traces, MitigationSetup("none"), config, "zen", 1)
            rfm = simulate(
                traces, MitigationSetup("rfm", threshold=4), config, "zen", 1
            )
            auto = simulate(
                traces,
                MitigationSetup("autorfm", threshold=4, policy="fractal"),
                config,
                "rubix",
                1,
            )
            rfm_vals.append(rfm.slowdown_vs(base))
            auto_vals.append(auto.slowdown_vs(base))
        out[tag] = (
            sum(rfm_vals) / len(rfm_vals),
            sum(auto_vals) / len(auto_vals),
        )
    return out


def test_ablation_core_parameters(benchmark):
    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "ablation_core_params",
        render_table(
            ["core configuration", "RFM-4", "AutoRFM-4", "gap"],
            [
                [tag, pct(rfm), pct(auto), f"{rfm / max(auto, 1e-9):.1f}x"]
                for tag, (rfm, auto) in out.items()
            ],
            title="Ablation A5: MLP sensitivity of the headline comparison",
        ),
    )
    for tag, (rfm, auto) in out.items():
        # RFM-4 is expensive and AutoRFM-4 cheap at every MLP point.
        assert rfm > 0.15, tag
        assert auto < 0.12, tag
        assert rfm > 2.5 * auto, tag