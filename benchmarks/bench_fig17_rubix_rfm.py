"""Fig. 17 (Appendix C): blocking RFM costs MORE on a Rubix system.

Each RFM run is normalized to its own mapping's unmitigated baseline.
Paper: RFM-4 costs 35.1 % on Rubix vs 33.1 % on Zen — Rubix spreads the
access stream but *increases* total activations per bank, so the RAA
counters fill faster and more RFMs are issued.
"""

from _common import pct, report

from repro.analysis.experiments import average, run_workload, slowdown, workload_rows
from repro.analysis.tables import render_table
from repro.mc.setup import MitigationSetup
from repro.workloads.catalog import WORKLOADS


def compute():
    out = {}
    for th in (4, 8):
        setup = MitigationSetup("rfm", threshold=th)
        out[f"zen{th}"] = average(
            workload_rows(
                lambda wl, s=setup: slowdown(wl, s, "zen", baseline_mapping="zen")
            )
        )
        out[f"rubix{th}"] = average(
            workload_rows(
                lambda wl, s=setup: slowdown(
                    wl, s, "rubix", baseline_mapping="rubix"
                )
            )
        )
    # RFM counts, to show the cause: more ACTs -> more RFMs under Rubix.
    setup4 = MitigationSetup("rfm", threshold=4)
    out["rfms_zen"] = sum(
        run_workload(w, setup4, "zen").stats.total_rfm_commands
        for w in WORKLOADS
    )
    out["rfms_rubix"] = sum(
        run_workload(w, setup4, "rubix").stats.total_rfm_commands
        for w in WORKLOADS
    )
    return out


def test_fig17_rfm_on_rubix(benchmark):
    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        ["RFM-4", pct(out["zen4"]), pct(out["rubix4"]), "33.1% / 35.1%"],
        ["RFM-8", pct(out["zen8"]), pct(out["rubix8"]), "12.9% / ~14%"],
    ]
    text = render_table(
        ["config", "on Zen", "on Rubix", "paper (Zen/Rubix)"],
        rows,
        title="Fig. 17: RFM slowdown on Zen vs Rubix systems",
    )
    text += (
        f"\ntotal RFM-4 commands: Zen {out['rfms_zen']}, "
        f"Rubix {out['rfms_rubix']} "
        f"({out['rfms_rubix'] / out['rfms_zen']:.2f}x)"
    )
    report("fig17_rubix_rfm", text)

    # Shape: Rubix issues more RFMs (more ACTs per bank) and RFM is at
    # least as expensive on Rubix as on Zen.
    assert out["rfms_rubix"] > out["rfms_zen"]
    assert out["rubix4"] > out["zen4"] - 0.02
    assert out["rubix4"] > 0.15
